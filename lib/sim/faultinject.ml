open Bs_support

(* Deterministic single-bit fault injection (soft-error model).

   A campaign draws faults from a seeded splitmix64 stream — a dynamic
   instruction index, a hardware target (register slice bits, memory bits,
   or the Δ redirect register) and a bit — runs the program once per
   fault, and classifies each run against the fault-free execution:

   - [Masked]    the checksum is unchanged and the misspeculation hardware
                 never fired beyond the fault-free count: the flip landed
                 in dead state or was overwritten;
   - [Detected]  the checksum is unchanged AND extra misspeculation events
                 occurred: the flip pushed a value out of its slice, the
                 overflow detector caught it, and the handler's full-width
                 re-execution repaired the damage — the paper's recovery
                 hardware acting as a free soft-error net;
   - [Trapped]   the run died on a structured trap (division by zero,
                 PC escape, memory fault, …): detected by construction;
   - [Sdc]       the run finished with a wrong checksum — silent data
                 corruption, the outcome resilience work cares about;
   - [Hung]      the fuel budget ran out: the flip broke termination.

   The classification currency is {!Outcome.t}, shared with the reference
   interpreter, whose checksum is the differential oracle. *)

type verdict =
  | Masked
  | Detected of int        (* extra misspeculation events *)
  | Trapped of Outcome.trap
  | Sdc of int64           (* the corrupted checksum *)
  | Hung

type trial = { tfault : Machine.fault; verdict : verdict }

let verdict_name = function
  | Masked -> "masked"
  | Detected _ -> "detected"
  | Trapped _ -> "trapped"
  | Sdc _ -> "sdc"
  | Hung -> "hang"

let verdict_names = [ "masked"; "detected"; "trapped"; "sdc"; "hang" ]

let describe_fault (f : Machine.fault) =
  match f.Machine.target with
  | Machine.Flip_reg (r, b) ->
      Printf.sprintf "flip r%d bit %d (slice byte %d) @ instr %d" r b (b / 8)
        f.Machine.at_instr
  | Machine.Flip_mem (a, b) ->
      Printf.sprintf "flip mem[0x%x] bit %d @ instr %d" a b f.Machine.at_instr
  | Machine.Flip_delta b ->
      Printf.sprintf "flip Δ bit %d @ instr %d" b f.Machine.at_instr

let describe_trial t =
  let extra =
    match t.verdict with
    | Detected n -> Printf.sprintf " (+%d misspec%s)" n (if n = 1 then "" else "s")
    | Sdc v -> Printf.sprintf " (checksum %Ld)" v
    | Trapped k -> Printf.sprintf " (%s)" (Outcome.trap_message k)
    | Masked | Hung -> ""
  in
  Printf.sprintf "%-28s -> %s%s" (describe_fault t.tfault)
    (verdict_name t.verdict) extra

(* Draw one fault.  Register flips dominate (they model the latch upsets
   the slice ALU sits behind); the register is drawn from the allocatable
   file, never SP/LR — flipping the stack pointer tests the memory system,
   which the memory target already covers more directly. *)
let gen_fault rng ~max_instr ~mem_lo ~mem_hi : Machine.fault =
  let at_instr = Rng.int_in rng 1 (max 1 max_instr) in
  let target =
    match Rng.int rng 6 with
    | 0 | 1 | 2 ->
        Machine.Flip_reg (Rng.int rng 13 (* r0-r12 *), Rng.int rng 32)
    | 3 | 4 ->
        Machine.Flip_mem (Rng.int_in rng mem_lo (max mem_lo mem_hi),
                          Rng.int rng 8)
    | _ -> Machine.Flip_delta (Rng.int rng 4)
  in
  { Machine.at_instr; target }

(* Register flips only — the target population of the bit-level
   vulnerability validation, where each trial must map to one register
   bit position. *)
let gen_reg_fault rng ~max_instr : Machine.fault =
  let at_instr = Rng.int_in rng 1 (max 1 max_instr) in
  { Machine.at_instr;
    target = Machine.Flip_reg (Rng.int rng 13, Rng.int rng 32) }

let run_trial ~mode ~fuel ~(program : Bs_backend.Asm.program)
    ~(mem : unit -> Bs_interp.Memimage.t) ~entry ~args ~expected
    ~golden_misspecs (fault : Machine.fault) : trial =
  let config =
    { Machine.mode; fuel; fault = Some fault; power = None;
      engine = Machine.Jit }
  in
  let verdict =
    match Machine.run ~config program (mem ()) ~entry ~args with
    | r -> (
        match r.Machine.outcome with
        | Outcome.Out_of_fuel | Outcome.Livelock -> Hung
        | Outcome.Finished | Outcome.Trapped _ ->
            if r.Machine.r0 = expected then
              let extra =
                r.Machine.ctr.Counters.misspecs - golden_misspecs
              in
              if extra > 0 then Detected extra else Masked
            else Sdc r.Machine.r0)
    | exception Machine.Sim_trap k -> Trapped k
    | exception Bs_interp.Memimage.Fault m -> Trapped (Outcome.Memory_fault m)
  in
  { tfault = fault; verdict }

type summary = {
  trials : int;
  masked : int;
  detected : int;
  trapped : int;
  sdc : int;
  hung : int;
}

let summarize trials =
  let s =
    List.fold_left
      (fun s t ->
        match t.verdict with
        | Masked -> { s with masked = s.masked + 1 }
        | Detected _ -> { s with detected = s.detected + 1 }
        | Trapped _ -> { s with trapped = s.trapped + 1 }
        | Sdc _ -> { s with sdc = s.sdc + 1 }
        | Hung -> { s with hung = s.hung + 1 })
      { trials = 0; masked = 0; detected = 0; trapped = 0; sdc = 0; hung = 0 }
      trials
  in
  { s with trials = List.length trials }

let summary_rows s =
  [ ("masked", s.masked); ("detected", s.detected); ("trapped", s.trapped);
    ("sdc", s.sdc); ("hang", s.hung) ]
