(** Closure-compiled dispatch engines for the BSARM machine model.

    Two layers, both built once per run:

    - {b Direct-threaded dispatch} ({!compile_bodies}): every PC is
      pre-decoded into a closure of type [unit -> int] performing the
      instruction's full semantics — hazard checks, counters, operation —
      and returning the successor PC.  The hot loop becomes one indirect
      call per step instead of a constructor match plus operand decode.

    - {b Superblock trace-JIT} ({!detect} + {!install_jit}): hot paths
      are fused — lazily, past {!promote_threshold} executions — into
      single closures.  A trace is a {e path}, not a contiguous range: it
      stitches straight-line runs together through unconditional jumps
      and calls, and through conditional branches predicted by a
      taken-direction heuristic that is kept only when it closes a loop
      back to the trace head.  Fused steps run counter-free: each exit
      carries a pre-computed {e delta ledger} of cycle/stall/energy
      constants flushed in one shot, instruction fetches are batched per
      cache line via {!Cache.bump_hits}, and a loop trace defers even the
      per-iteration flush until the loop finally exits.  Guard exits
      (misspeculation, a conditional going the unpredicted way, fuel
      expiry, classic-mode slice use) flush their ledger and fall back to
      the threaded loop.

    Both engines are byte-identical in observable effect (counters,
    outcome, memory image, cache state) to the classic interpreter loop
    in {!Machine}; the only sanctioned divergence is counter state at the
    moment an exception escapes, which no caller can observe.  Traces
    must only be installed when the run has no power trace and no fault
    injection — under those configs every instruction is a potential
    checkpoint/outage/fault boundary, so the JIT degenerates to threaded
    dispatch. *)

exception Sim_trap of Bs_support.Outcome.trap
(** The machine's structured trap.  {!Machine.Sim_trap} rebinds this
    exception, so the two are interchangeable. *)

(** {1 Timing constants (cycles)} *)

val l2_latency : int
val dram_latency : int
val branch_penalty : int
val mul_penalty : int
val div_penalty : int

(** {1 Architectural state} *)

type state = {
  regs : int array;  (** 32-bit values *)
  mutable pc : int;
  mutable next : int;
      (** in-flight successor PC; used by the classic loop only — bodies
          return the successor instead *)
  mutable delta : int;
  mutable mode : Bs_isa.Isa.mode;
  mutable halted : bool;
  mutable cmp_a : int;
  mutable cmp_b : int;
  mutable cmp_width8 : bool;
  mutable last_load_dest : int;
      (** register written by the previous load, [-1] if none *)
  mutable loaded : int;
      (** load destination of the current step; classic loop only —
          bodies write [last_load_dest] directly *)
}

val mask32 : int -> int
val read_reg : state -> Counters.t -> int -> int
val write_reg : state -> Counters.t -> int -> int -> unit
val read_slice : state -> Counters.t -> Bs_isa.Isa.slice -> int
val write_slice : state -> Counters.t -> Bs_isa.Isa.slice -> int -> unit
val eval_cond : state -> Bs_isa.Isa.cond -> bool

(** {1 Dispatch context} *)

(** Everything a dispatch engine needs, bundled once per run. *)
type ctx = {
  st : state;
  ctr : Counters.t;
  mem : Bs_interp.Memimage.t;
  icache : Cache.t;
  dcache : Cache.t;
  l2 : Cache.t;
  pc_counts : (int, int) Hashtbl.t;
      (** misspeculation counts per faulting pc, shared with the
          machine's attribution table *)
  prog : Bs_backend.Asm.program;
  fuel : int;
}

val mem_access : ctx -> int -> unit
(** Data access: D$ → L2 → DRAM, charging latency stalls. *)

val fetch : ctx -> int -> unit
(** Instruction fetch for [pc]: I$ → L2 → DRAM. *)

val misspec : ctx -> int -> int
(** Misspeculation at [pc]: count, attribute, pay the redirect penalty,
    return [pc + Δ]. *)

(** {1 Direct-threaded dispatch} *)

val compile_bodies : ctx -> (unit -> int) array
(** One closure per PC.  Contract: the dispatch loop has already
    bounds-checked the pc, fetched it through the I$, charged one
    instruction and one cycle, and checked fuel; the body performs the
    instruction (hazards, counters, semantics, [last_load_dest]) and
    returns the successor pc. *)

(** {1 Superblock trace-JIT} *)

type trace = {
  t_head : int;  (** = [t_pcs.(0)]; the dispatch slot the trace owns *)
  t_pcs : int array;
      (** the executed path: straight-line runs stitched together through
          interior unconditional jumps and forward conditionals
          (fall-through direction) *)
  t_stop : int;
      (** the first pc not on the path: a terminal branch to absorb into
          the fused exit, or the fall-through successor *)
}

val min_trace_len : int
val max_trace_len : int

val promote_threshold : int
(** Executions of a trace head before it is fused. *)

val fusible : Bs_isa.Isa.insn -> bool
(** Instructions that may join a trace: control always falls through them
    (misspeculation exits via a guard) and they cannot change the
    dispatch mode or Δ mid-trace.  Branches are not fusible but can still
    sit on a trace path: {!detect} follows unconditional jumps through
    and keeps forward conditionals as counted guard exits. *)

val detect : Bs_backend.Asm.program -> trace list
(** Static trace heads — block leaders of the straight-line CFG (entries,
    branch/call targets, fall-throughs, static misspeculation targets) —
    each extended along its superblock path: fusible instructions fall
    through, forward conditionals continue on the fall-through direction,
    and interior unconditional jumps are followed through (stitching the
    backend's trampolined blocks into whole loop bodies).  The walk ends
    at a dynamic successor, a backward conditional, a jump that would
    revisit the path, or the length cap.  Ascending head order; traces
    may overlap. *)

val install_jit : ctx -> (unit -> int) array -> (unit -> int) array
(** A dispatch table over [bodies] with a lazily-promoting profiling
    closure at every trace head.  Only valid for runs with no power trace
    and no fault injection. *)
