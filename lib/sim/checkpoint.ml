open Bs_isa

(* Architectural checkpoints for intermittent-power execution.

   A checkpoint captures everything a power failure would lose: the
   register file (slice views alias register bytes, so one copy of the
   32-bit file covers both), the PC, the Δ redirect register, the mode
   bit, the compare state and the hazard-tracking byproduct.  Memory is
   not copied here — the machine model journals stores through
   [Memimage] and rolls them back on restore, so the checkpoint's memory
   cost is only the dirty bytes flushed at commit time.

   The [saved] record is all-mutable and allocated once per run: the
   pre-store policy can checkpoint on every store, so capture must not
   allocate. *)

type policy =
  | Interval of int       (* checkpoint every n dynamic instructions *)
  | Pre_store             (* checkpoint before every memory store *)
  | Pre_speculation       (* checkpoint before every slice instruction *)

let policy_name = function
  | Interval n -> "interval:" ^ string_of_int n
  | Pre_store -> "pre-store"
  | Pre_speculation -> "pre-spec"

let policy_of_string s =
  match s with
  | "pre-store" -> Some Pre_store
  | "pre-spec" -> Some Pre_speculation
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "interval" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some n when n > 0 -> Some (Interval n)
          | _ -> None)
      | _ -> None)

type saved = {
  s_regs : int array;
  mutable s_pc : int;
  mutable s_delta : int;
  mutable s_mode : Isa.mode;
  mutable s_cmp_a : int;
  mutable s_cmp_b : int;
  mutable s_cmp_width8 : bool;
  mutable s_last_load_dest : int;
  mutable s_at_instrs : int;   (* dynamic instruction count at capture *)
}

let create ~num_regs =
  { s_regs = Array.make num_regs 0; s_pc = 0; s_delta = 0;
    s_mode = Isa.Bitspec; s_cmp_a = 0; s_cmp_b = 0; s_cmp_width8 = false;
    s_last_load_dest = -1; s_at_instrs = 0 }

(* Cost model: a checkpoint commit writes the register file (4 bytes per
   register), the control/compare state (a flat 16 bytes), and the dirty
   memory bytes journalled since the previous commit to non-volatile
   storage. *)
let cost_bytes ~num_regs ~dirty = (4 * num_regs) + 16 + dirty

(* Pipeline costs (cycles): a checkpoint drains the store buffer into the
   NVM write queue; a restore re-ramps the supply and refills the
   pipeline and the architectural state. *)
let checkpoint_cycles = 12
let restore_cycles = 120
