(** Crash-triage buckets for differential testing.

    The differential fuzzer compares one program's behaviour across every
    build configuration against the reference interpreter.  Any
    disagreement is classified into a {!t}: a divergence {!kind} plus the
    {!Diag.t} code and a short detail (the offending configuration or trap
    name) that together form a {b stable key}.  Two failures with the same
    key are the same bug for deduplication, corpus naming and replay
    purposes — the key never embeds addresses, seeds or other
    run-dependent data. *)

(** How the configurations disagreed. *)
type kind =
  | Result_mismatch   (** a machine run finished with the wrong value *)
  | Trap_divergence   (** one side trapped, the other did not (or differently) *)
  | Diag_divergence   (** a configuration degraded or failed with error diagnostics *)
  | Verifier_reject   (** the IR verifier rejected a pass's output *)
  | Frontend_reject   (** the front-end rejected generator output *)
  | Hang              (** fuel exhausted in a configuration but not the reference *)
  | Power_restored
      (** an intermittent-power run completed correctly through one or
          more checkpoint restores *)
  | Reexec_livelock
      (** repeated power failures prevented forward progress even after
          the checkpoint policy degraded *)

type t = {
  kind : kind;
  code : string option;  (** the implicated {!Diag.t} code, when one exists *)
  detail : string;       (** configuration name, trap name, … ([""] if none) *)
}

val make : ?code:string -> ?detail:string -> kind -> t

val hang : ?detail:string -> unit -> t
val restored : ?detail:string -> unit -> t
val reexec_livelock : ?detail:string -> unit -> t
(** Shared constructors: every harness that classifies a hang or a
    power-fail outcome uses these, so the keys coincide across the fuzz
    oracle, fault-injection campaigns and power-fail campaigns. *)

val kind_name : kind -> string
(** Stable kebab-case name, e.g. ["result-mismatch"]. *)

val key : t -> string
(** The stable triage key: kind, code and detail joined with [':'],
    e.g. ["diag-divergence:BS-SQZ-01:bitspec-max"]. *)

val of_diag : detail:string -> Diag.t -> t
(** Classify a compile-time diagnostic: [Verify]-phase diagnostics become
    {!Verifier_reject}, front-end phases {!Frontend_reject}, everything
    else {!Diag_divergence}; the diagnostic's code is carried over. *)

(** {2 Campaign tallies} *)

type tally
(** Multiset of bucket keys, in first-seen order. *)

val empty_tally : tally
val add : tally -> string -> tally
val rows : tally -> (string * int) list
val total : tally -> int

val report : tally -> string
(** Two-column table (key, count), first-seen order, or ["(no
    divergences)\n"] when empty. *)
