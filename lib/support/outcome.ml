(* Structured execution outcomes shared by the reference interpreter and
   the machine model, so fuel exhaustion and traps classify identically
   whichever engine ran the program (the fault-injection harness relies on
   this to compare the two). *)

type trap =
  | Division_by_zero
  | Stack_overflow
  | Unknown_entry of string
  | Unknown_function of string
  | Pc_out_of_range of int
  | Classic_mode_slice
  | Memory_fault of string
  | Trap_message of string

type t = Finished | Out_of_fuel | Trapped of trap | Livelock

let trap_message = function
  | Division_by_zero -> "division by zero"
  | Stack_overflow -> "stack overflow"
  | Unknown_entry e -> "unknown entry " ^ e
  | Unknown_function f -> "call to unknown function " ^ f
  | Pc_out_of_range pc -> Printf.sprintf "PC out of range: %d" pc
  | Classic_mode_slice -> "slice instruction in classic mode"
  | Memory_fault m -> "memory fault: " ^ m
  | Trap_message m -> m

(* Payload-free names: the fuzzer's triage keys must not change with the
   faulting address or the entry name, only with the trap's kind. *)
let trap_name = function
  | Division_by_zero -> "div0"
  | Stack_overflow -> "stack-overflow"
  | Unknown_entry _ -> "unknown-entry"
  | Unknown_function _ -> "unknown-function"
  | Pc_out_of_range _ -> "pc-out-of-range"
  | Classic_mode_slice -> "classic-mode-slice"
  | Memory_fault _ -> "memory-fault"
  | Trap_message _ -> "trap"

let to_string = function
  | Finished -> "finished"
  | Out_of_fuel -> "out of fuel"
  | Trapped t -> "trap: " ^ trap_message t
  | Livelock -> "re-execution livelock"

(* The shared hang budget.  Both fault-injection campaigns and the fuzz
   oracle bound a machine run by the reference execution's length scaled
   by an engine-specific [factor], plus flat slack for startup code; a
   run exceeding it classifies as [Out_of_fuel] on either harness.
   Keeping the formula here keeps the two classifications identical. *)
let hang_fuel ~steps ~factor = (factor * steps) + 10_000
