(* Crash-triage buckets for differential testing.

   A bucket is the identity of a differential-fuzzing failure: the kind of
   divergence, the implicated diagnostic code (if a compile-time pass is
   involved) and a short stable detail such as the configuration or trap
   name.  The rendered key deliberately contains nothing run-dependent so
   that the same bug found from two seeds dedups to one corpus entry. *)

type kind =
  | Result_mismatch
  | Trap_divergence
  | Diag_divergence
  | Verifier_reject
  | Frontend_reject
  | Hang
  | Power_restored
  | Reexec_livelock

type t = {
  kind : kind;
  code : string option;
  detail : string;
}

let make ?code ?(detail = "") kind = { kind; code; detail }

let kind_name = function
  | Result_mismatch -> "result-mismatch"
  | Trap_divergence -> "trap-divergence"
  | Diag_divergence -> "diag-divergence"
  | Verifier_reject -> "verifier-reject"
  | Frontend_reject -> "frontend-reject"
  | Hang -> "hang"
  | Power_restored -> "restored"
  | Reexec_livelock -> "reexec-livelock"

(* Shared constructors, so every harness that classifies a hang or a
   power-fail outcome lands on the same key. *)
let hang ?detail () = make ?detail Hang
let restored ?detail () = make ?detail Power_restored
let reexec_livelock ?detail () = make ?detail Reexec_livelock

let key t =
  String.concat ":"
    (kind_name t.kind
     :: (match t.code with Some c -> [ c ] | None -> [])
     @ (if t.detail = "" then [] else [ t.detail ]))

let of_diag ~detail (d : Diag.t) =
  let kind =
    match d.Diag.phase with
    | Diag.Verify -> Verifier_reject
    | Diag.Parse | Diag.Typecheck | Diag.Lowering -> Frontend_reject
    | _ -> Diag_divergence
  in
  { kind; code = Some d.Diag.code; detail }

(* --- tallies ----------------------------------------------------------- *)

(* Association list in first-seen order: campaigns are small (dozens of
   distinct buckets at most) and the order makes reports reproducible. *)
type tally = (string * int) list

let empty_tally : tally = []

let add (t : tally) k =
  let rec go = function
    | [] -> [ (k, 1) ]
    | (k', n) :: rest when k' = k -> (k', n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  go t

let rows (t : tally) = t
let total (t : tally) = List.fold_left (fun acc (_, n) -> acc + n) 0 t

let report (t : tally) =
  if t = [] then "(no divergences)\n"
  else begin
    let b = Buffer.create 256 in
    let w =
      List.fold_left (fun acc (k, _) -> max acc (String.length k)) 6 t
    in
    Buffer.add_string b (Printf.sprintf "%-*s %6s\n" w "bucket" "count");
    List.iter
      (fun (k, n) -> Buffer.add_string b (Printf.sprintf "%-*s %6d\n" w k n))
      t;
    Buffer.contents b
  end
