(* Structured compiler diagnostics.

   Every recoverable failure in the pipeline is reported as a [t] — an
   error code, a severity, the phase that failed, and the function (if the
   failure was isolated to one) — instead of a bare exception.  The
   graceful-degradation driver accumulates these and returns them next to
   the binary; [--strict] callers turn any [Error] back into an abort. *)

type severity = Info | Warning | Error

type phase =
  | Parse
  | Typecheck
  | Lowering
  | Expand
  | Cfg_prep
  | Profile
  | Squeeze
  | Compare_elim
  | Bitmask_elide
  | Opt
  | Verify
  | Isel
  | Regalloc
  | Assemble
  | Sim
  | Other

type t = {
  code : string;           (* stable machine-matchable code, e.g. "BS-SQZ-01" *)
  severity : severity;
  phase : phase;
  func : string option;    (* the function the failure was isolated to *)
  line : int option;       (* source line, for front-end diagnostics *)
  message : string;
}

let make ?(severity = Error) ?func ?line ~code ~phase message =
  { code; severity; phase; func; line; message }

let error = make ~severity:Error
let warning = make ~severity:Warning
let info = make ~severity:Info

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let phase_name = function
  | Parse -> "parse"
  | Typecheck -> "typecheck"
  | Lowering -> "lowering"
  | Expand -> "expand"
  | Cfg_prep -> "cfg-prep"
  | Profile -> "profile"
  | Squeeze -> "squeeze"
  | Compare_elim -> "compare-elim"
  | Bitmask_elide -> "bitmask-elide"
  | Opt -> "opt"
  | Verify -> "verify"
  | Isel -> "isel"
  | Regalloc -> "regalloc"
  | Assemble -> "assemble"
  | Sim -> "sim"
  | Other -> "other"

let to_string d =
  let ctx =
    match (d.func, d.line) with
    | Some f, _ -> Printf.sprintf "%s, %s" (phase_name d.phase) f
    | None, Some l -> Printf.sprintf "%s, line %d" (phase_name d.phase) l
    | None, None -> phase_name d.phase
  in
  Printf.sprintf "%s[%s] (%s): %s" (severity_name d.severity) d.code ctx
    d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
