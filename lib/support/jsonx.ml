(* Minimal JSON: a printer that never emits newlines (one value = one
   protocol line) and a depth-bounded recursive-descent parser.  See the
   interface for the design constraints. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* --- printing ---------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Bad of int * string

let max_depth = 64

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* non-ASCII code points come back as UTF-8 *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (p, msg) ->
      Error (Printf.sprintf "json: at offset %d: %s" p msg)

(* --- accessors --------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let get_string = function Str s -> Some s | _ -> None
let get_int = function Num f -> Some (int_of_float f) | _ -> None
let get_float = function Num f -> Some f | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function Arr xs -> Some xs | _ -> None

let bind o f = Option.bind o f
let mem_string k v = bind (member k v) get_string
let mem_int k v = bind (member k v) get_int
let mem_float k v = bind (member k v) get_float
let mem_bool k v = bind (member k v) get_bool
