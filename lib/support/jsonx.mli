(** A minimal JSON value type with a strict printer and a tolerant
    recursive-descent parser.

    The compile service speaks newline-delimited JSON; this module is
    the single codec both ends use.  It is deliberately tiny — objects
    are association lists in insertion order, numbers are floats (exact
    for the integers the protocol carries, which fit in 53 bits) — and
    it depends on nothing, so every library layer can use it.

    The printer emits no newlines, so one value is always one protocol
    line.  The parser bounds nesting depth (an adversarial client must
    not overflow the server's stack) and rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** [int n] is [Num (float_of_int n)]. *)

val to_string : t -> string
(** Compact rendering on one line, with full string escaping. *)

val parse : string -> (t, string) result
(** Parse exactly one JSON value (surrounding whitespace allowed).
    Errors carry a position and a reason. *)

(** Accessors: total lookups for decoding protocol messages. *)

val member : string -> t -> t option
(** [member k (Obj _)] finds the first binding of [k]. [None] on other
    constructors. *)

val get_string : t -> string option
val get_int : t -> int option
(** [get_int] truncates; integral floats round-trip exactly up to
    2{^53}. *)

val get_float : t -> float option
val get_bool : t -> bool option
val get_list : t -> t list option

val mem_string : string -> t -> string option
val mem_int : string -> t -> int option
val mem_float : string -> t -> float option
val mem_bool : string -> t -> bool option
(** [mem_* k v] = [member k v] composed with the accessor. *)
