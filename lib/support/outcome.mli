(** Structured execution outcomes.

    The reference interpreter and the machine model both report how a run
    ended through this one type, so fuel exhaustion and traps classify
    identically whichever engine ran the program.  The fault-injection
    harness compares outcomes across engines when judging injected
    faults. *)

(** Why an execution stopped abnormally. *)
type trap =
  | Division_by_zero
  | Stack_overflow              (** simulated stack ran into the globals *)
  | Unknown_entry of string     (** no such entry point *)
  | Unknown_function of string  (** call target does not resolve *)
  | Pc_out_of_range of int      (** control escaped the code image *)
  | Classic_mode_slice          (** slice instruction with the extension off *)
  | Memory_fault of string      (** out-of-bounds access *)
  | Trap_message of string      (** anything else, with a diagnostic *)

type t =
  | Finished                    (** ran to completion; the result is valid *)
  | Out_of_fuel                 (** dynamic instruction budget exhausted *)
  | Trapped of trap
  | Livelock
      (** intermittent-power execution gave up: repeated power failures
          prevented forward progress even after the checkpoint policy
          degraded (see {!Bs_sim.Machine.power}) *)

val trap_message : trap -> string

val trap_name : trap -> string
(** Stable payload-free name for triage keys, e.g. ["div0"],
    ["memory-fault"]. *)

val to_string : t -> string

val hang_fuel : steps:int -> factor:int -> int
(** The shared hang budget: a machine run bounded by the reference
    execution's [steps] scaled by [factor], plus flat slack.  The
    fault-injection campaign and the fuzz oracle both derive their fuel
    from this one formula so out-of-fuel classifies identically on
    either harness. *)
