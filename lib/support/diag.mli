(** Structured compiler diagnostics.

    Every recoverable failure in the pipeline is reported as a {!t} — an
    error code, a severity, the phase that failed, and the function (if
    the failure was isolated to one) — instead of a bare exception.  The
    graceful-degradation driver accumulates these and returns them next to
    the binary; strict callers turn any [Error] back into an abort. *)

type severity = Info | Warning | Error

(** The pipeline stage a diagnostic originates from. *)
type phase =
  | Parse
  | Typecheck
  | Lowering
  | Expand
  | Cfg_prep
  | Profile
  | Squeeze
  | Compare_elim
  | Bitmask_elide
  | Opt
  | Verify
  | Isel
  | Regalloc
  | Assemble
  | Sim
  | Other

type t = {
  code : string;         (** stable machine-matchable code, e.g. ["BS-SQZ-01"] *)
  severity : severity;
  phase : phase;
  func : string option;  (** the function the failure was isolated to *)
  line : int option;     (** source line, for front-end diagnostics *)
  message : string;
}

val make :
  ?severity:severity -> ?func:string -> ?line:int ->
  code:string -> phase:phase -> string -> t

val error : ?func:string -> ?line:int -> code:string -> phase:phase -> string -> t
val warning : ?func:string -> ?line:int -> code:string -> phase:phase -> string -> t
val info : ?func:string -> ?line:int -> code:string -> phase:phase -> string -> t

val severity_name : severity -> string
val phase_name : phase -> string

val to_string : t -> string
(** ["error[BS-SQZ-01] (squeeze, crc32): ..."] *)

val pp : Format.formatter -> t -> unit

val is_error : t -> bool
val errors : t list -> t list
