open Bs_ir
open Bs_interp

(* Semantics of the IR evaluator, operator by operator: each binop and
   cast is checked against an independent OCaml model over random values
   and widths, plus targeted edge cases (division by zero traps, shift
   masking, phi two-phase evaluation, memory endianness, misspeculation
   conditions). *)

let widths = [ 8; 16; 32; 64 ]

let gen_w_ab =
  QCheck.make
    QCheck.Gen.(
      let* w = oneofl widths in
      let* a = map Int64.of_int (int_bound 0x3FFFFFFF) in
      let* b = map Int64.of_int (int_bound 0x3FFFFFFF) in
      return (w, Width.trunc w a, Width.trunc w b))

let model op w a b =
  let t = Width.trunc w in
  let sa = Width.sext w a and sb = Width.sext w b in
  match op with
  | Ir.Add -> Some (t (Int64.add a b))
  | Ir.Sub -> Some (t (Int64.sub a b))
  | Ir.Mul -> Some (t (Int64.mul a b))
  | Ir.And -> Some (Int64.logand a b)
  | Ir.Or -> Some (Int64.logor a b)
  | Ir.Xor -> Some (Int64.logxor a b)
  | Ir.Udiv -> if b = 0L then None else Some (t (Int64.unsigned_div a b))
  | Ir.Urem -> if b = 0L then None else Some (t (Int64.unsigned_rem a b))
  | Ir.Sdiv -> if b = 0L then None else Some (t (Int64.div sa sb))
  | Ir.Srem -> if b = 0L then None else Some (t (Int64.rem sa sb))
  | Ir.Shl -> Some (t (Int64.shift_left a (Int64.to_int b land (w - 1))))
  | Ir.Lshr ->
      Some (t (Int64.shift_right_logical (Width.trunc w a) (Int64.to_int b land (w - 1))))
  | Ir.Ashr -> Some (t (Int64.shift_right sa (Int64.to_int b land (w - 1))))

let prop_of_binop op name =
  QCheck.Test.make ~name:("eval_binop " ^ name) ~count:200 gen_w_ab
    (fun (w, a, b) ->
      match model op w a b with
      | Some expected -> Interp.eval_binop op w a b = expected
      | None -> (
          match Interp.eval_binop op w a b with
          | exception Interp.Trap _ -> true
          | _ -> false))

let binop_props =
  List.map
    (fun (op, n) -> prop_of_binop op n)
    [ (Ir.Add, "add"); (Ir.Sub, "sub"); (Ir.Mul, "mul"); (Ir.And, "and");
      (Ir.Or, "or"); (Ir.Xor, "xor"); (Ir.Udiv, "udiv"); (Ir.Urem, "urem");
      (Ir.Sdiv, "sdiv"); (Ir.Srem, "srem"); (Ir.Shl, "shl");
      (Ir.Lshr, "lshr"); (Ir.Ashr, "ashr") ]

let prop_cmp =
  QCheck.Test.make ~name:"eval_cmp all predicates" ~count:200 gen_w_ab
    (fun (w, a, b) ->
      let sa = Width.sext w a and sb = Width.sext w b in
      let ua = Width.trunc w a and ub = Width.trunc w b in
      let expect op =
        let r =
          match op with
          | Ir.Eq -> ua = ub
          | Ir.Ne -> ua <> ub
          | Ir.Ult -> Int64.unsigned_compare ua ub < 0
          | Ir.Ule -> Int64.unsigned_compare ua ub <= 0
          | Ir.Ugt -> Int64.unsigned_compare ua ub > 0
          | Ir.Uge -> Int64.unsigned_compare ua ub >= 0
          | Ir.Slt -> sa < sb
          | Ir.Sle -> sa <= sb
          | Ir.Sgt -> sa > sb
          | Ir.Sge -> sa >= sb
        in
        if r then 1L else 0L
      in
      List.for_all
        (fun op -> Interp.eval_cmp op w a b = expect op)
        [ Ir.Eq; Ir.Ne; Ir.Ult; Ir.Ule; Ir.Ugt; Ir.Uge; Ir.Slt; Ir.Sle;
          Ir.Sgt; Ir.Sge ])

let test_div_zero_traps () =
  List.iter
    (fun op ->
      match Interp.eval_binop op 32 5L 0L with
      | exception Interp.Trap _ -> ()
      | _ -> Alcotest.fail "division by zero must trap")
    [ Ir.Udiv; Ir.Sdiv; Ir.Urem; Ir.Srem ]

let test_shift_masking () =
  (* shift amounts are masked to width-1 bits, as on the machine *)
  Alcotest.(check int64) "shl by 32 == shl by 0" 5L
    (Interp.eval_binop Ir.Shl 32 5L 32L);
  Alcotest.(check int64) "shl by 33 == shl by 1" 10L
    (Interp.eval_binop Ir.Shl 32 5L 33L)

let test_misspec_conditions () =
  let f = Ir.create_func ~name:"t" ~params:[] ~ret_width:0 in
  let add = Ir.mk_instr f ~width:8 (Ir.Bin (Ir.Add, Ir.const ~width:8 0L, Ir.const ~width:8 0L)) in
  add.Ir.speculative <- true;
  Alcotest.(check bool) "200+100 overflows" true
    (Interp.misspeculates add [ 200L; 100L ] 44L);
  Alcotest.(check bool) "100+100 fits" false
    (Interp.misspeculates add [ 100L; 100L ] 200L);
  let sub = Ir.mk_instr f ~width:8 (Ir.Bin (Ir.Sub, Ir.const ~width:8 0L, Ir.const ~width:8 0L)) in
  sub.Ir.speculative <- true;
  Alcotest.(check bool) "3-5 underflows" true
    (Interp.misspeculates sub [ 3L; 5L ] 254L);
  let trunc = Ir.mk_instr f ~width:8 (Ir.Cast (Ir.TruncCast, Ir.const ~width:32 0L)) in
  trunc.Ir.speculative <- true;
  Alcotest.(check bool) "trunc 256" true (Interp.misspeculates trunc [ 256L ] 0L);
  Alcotest.(check bool) "trunc 255" false (Interp.misspeculates trunc [ 255L ] 255L);
  let logic = Ir.mk_instr f ~width:8 (Ir.Bin (Ir.Xor, Ir.const ~width:8 0L, Ir.const ~width:8 0L)) in
  logic.Ir.speculative <- true;
  Alcotest.(check bool) "logic never misspeculates" false
    (Interp.misspeculates logic [ 255L; 255L ] 0L)

let test_memimage_endianness () =
  let m = { Ir.funcs = []; globals = [] } in
  let mem = Memimage.create ~size:65536 m in
  Memimage.write mem ~width:32 256 0xDEADBEEFL;
  Alcotest.(check int64) "byte 0" 0xEFL (Memimage.read mem ~width:8 256);
  Alcotest.(check int64) "byte 3" 0xDEL (Memimage.read mem ~width:8 259);
  Alcotest.(check int64) "halfword" 0xBEEFL (Memimage.read mem ~width:16 256);
  Alcotest.(check int64) "word" 0xDEADBEEFL (Memimage.read mem ~width:32 256)

let test_memimage_bounds () =
  let m = { Ir.funcs = []; globals = [] } in
  let mem = Memimage.create ~size:65536 m in
  (match Memimage.read mem ~width:32 65534 with
  | exception Memimage.Fault _ -> ()
  | _ -> Alcotest.fail "straddling read must fault");
  match Memimage.write mem ~width:8 (-1) 0L with
  | exception Memimage.Fault _ -> ()
  | _ -> Alcotest.fail "negative write must fault"

let test_globals_layout () =
  (* globals are aligned to their element size and non-overlapping *)
  let m =
    Bs_frontend.Lower.compile
      "u8 a[3];\nu32 b[2];\nu16 c[5];\nu32 f() { return 0; }"
  in
  let mem = Memimage.create m in
  let addr n = Memimage.addr_of mem n in
  Alcotest.(check bool) "b is 4-aligned" true (addr "b" mod 4 = 0);
  Alcotest.(check bool) "c is 2-aligned" true (addr "c" mod 2 = 0);
  Alcotest.(check bool) "disjoint" true
    (addr "b" >= addr "a" + 3 && addr "c" >= addr "b" + 8)

let test_interp_call_counting () =
  let m =
    Bs_frontend.Lower.compile
      "u32 g(u32 x) { return x + 1; }\n\
       u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += g(i); return s; }"
  in
  let r, _ = Interp.run_fresh m ~entry:"f" ~args:[ 7L ] in
  Alcotest.(check int) "1 + 7 calls" 8 r.Interp.calls

let test_fuel_exhaustion () =
  (* fuel exhaustion is a structured outcome — the same Outcome.t variant
     the machine model reports — not an exception *)
  let m =
    Bs_frontend.Lower.compile "u32 f() { u32 x = 1; while (x) { x = 1; } return x; }"
  in
  let opts = { Interp.default_opts with fuel = 1000 } in
  let r, _ = Interp.run_fresh ~opts m ~entry:"f" ~args:[] in
  Alcotest.(check bool) "out of fuel" true
    (r.Interp.outcome = Bs_support.Outcome.Out_of_fuel);
  Alcotest.(check bool) "no return value" true (r.Interp.ret = None)

let test_normal_outcome_finished () =
  let m = Bs_frontend.Lower.compile "u32 f() { return 7; }" in
  let r, _ = Interp.run_fresh m ~entry:"f" ~args:[] in
  Alcotest.(check bool) "finished" true
    (r.Interp.outcome = Bs_support.Outcome.Finished)

let test_trap_unknown_entry () =
  let m = Bs_frontend.Lower.compile "u32 f() { return 7; }" in
  match Interp.run_fresh m ~entry:"nonexistent" ~args:[] with
  | exception Interp.Trap msg ->
      Alcotest.(check bool) "names the entry" true
        (Str_exists.contains msg "nonexistent")
  | _ -> Alcotest.fail "unknown entry must trap"

let test_trap_stack_overflow_frames () =
  (* unbounded recursion with a stack frame: the simulated SP descends
     into the globals region and the interpreter traps *)
  let m =
    Bs_frontend.Lower.compile
      "u32 f(u32 n) { u8 a[4096]; a[0] = (u8)n; return f(n + 1) + a[0]; }"
  in
  match Interp.run_fresh ~mem_size:65536 m ~entry:"f" ~args:[ 0L ] with
  | exception Interp.Trap msg ->
      Alcotest.(check bool) "stack overflow" true
        (Str_exists.contains msg "stack overflow")
  | _ -> Alcotest.fail "frame recursion must trap"

let test_trap_stack_overflow_frameless () =
  (* frameless unbounded recursion exhausts the host stack instead; the
     interpreter still reports the uniform stack-overflow trap *)
  let m = Bs_frontend.Lower.compile "u32 f(u32 n) { return f(n + 1); }" in
  match Interp.run_fresh m ~entry:"f" ~args:[ 0L ] with
  | exception Interp.Trap msg ->
      Alcotest.(check bool) "stack overflow" true
        (Str_exists.contains msg "stack overflow")
  | _ -> Alcotest.fail "frameless recursion must trap"

let test_trap_division_in_program () =
  let m = Bs_frontend.Lower.compile "u32 f(u32 n) { return 100 / n; }" in
  (match Interp.run_fresh m ~entry:"f" ~args:[ 0L ] with
  | exception Interp.Trap msg ->
      Alcotest.(check bool) "division" true (Str_exists.contains msg "division")
  | _ -> Alcotest.fail "division by zero must trap");
  let m2 = Bs_frontend.Lower.compile "u32 g(u32 n) { return 100 % n; }" in
  match Interp.run_fresh m2 ~entry:"g" ~args:[ 0L ] with
  | exception Interp.Trap msg ->
      Alcotest.(check bool) "remainder" true
        (Str_exists.contains msg "remainder")
  | _ -> Alcotest.fail "remainder by zero must trap"

let suite =
  List.map QCheck_alcotest.to_alcotest binop_props
  @ [ QCheck_alcotest.to_alcotest prop_cmp;
      Alcotest.test_case "division by zero traps" `Quick test_div_zero_traps;
      Alcotest.test_case "shift amount masking" `Quick test_shift_masking;
      Alcotest.test_case "Table 1 misspec conditions" `Quick
        test_misspec_conditions;
      Alcotest.test_case "little-endian memory" `Quick test_memimage_endianness;
      Alcotest.test_case "memory bounds faults" `Quick test_memimage_bounds;
      Alcotest.test_case "global layout alignment" `Quick test_globals_layout;
      Alcotest.test_case "call counting" `Quick test_interp_call_counting;
      Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
      Alcotest.test_case "normal run reports Finished" `Quick
        test_normal_outcome_finished;
      Alcotest.test_case "trap: unknown entry" `Quick test_trap_unknown_entry;
      Alcotest.test_case "trap: stack overflow (frames)" `Quick
        test_trap_stack_overflow_frames;
      Alcotest.test_case "trap: stack overflow (frameless)" `Quick
        test_trap_stack_overflow_frameless;
      Alcotest.test_case "trap: division and remainder by zero" `Quick
        test_trap_division_in_program ]
