open Bs_support
open Bitspec

(* Engine equivalence and the memory-image correctness sweep.

   The direct-threaded and superblock trace-JIT engines exist for host
   speed only: for any program, any input, and any injected power trace,
   they must produce results byte-identical to the classic reference
   fetch-decode-execute loop — return value, outcome, every activity
   counter, misspeculation attribution, cache hit/miss state and the
   final memory image.  ([Counters.wall_ns] is deliberately excluded
   from [Counters.to_assoc], so the comparison is host-speed-blind.)

   Also covered here: the memory-image layout boundary (a layout ending
   exactly at [size] fits; one byte more faults, before anything is
   allocated), duplicate-global rejection (BS-IMG-01), and the undo
   journal's snapshot/restore semantics. *)

let other_engines =
  [ ("threaded", Bs_sim.Machine.Threaded); ("jit", Bs_sim.Machine.Jit) ]

(* One run's complete observable state. *)
type obs = {
  o_exn : string option;   (* a raise makes everything else unobservable *)
  o_r0 : int64;
  o_outcome : string;
  o_ctr : (string * int) list;
  o_misspec : (int * int) list;
  o_caches : (string * int * int) list;
  o_mem : Bs_interp.Memimage.snapshot option;
}

let no_obs =
  { o_exn = None; o_r0 = 0L; o_outcome = ""; o_ctr = []; o_misspec = [];
    o_caches = []; o_mem = None }

(* Run [c] on a fresh memory image under [engine].  [power] builds the
   power configuration per run — a Powertrace is stateful, so every
   engine must get its own (identically seeded) trace. *)
let observe ?(fuel = 2_000_000) ?power (c : Driver.compiled) engine ~entry
    ~args =
  let open Bs_sim in
  let mem = Bs_interp.Memimage.create c.Driver.ir in
  let mode =
    if c.Driver.config.Driver.arch = Driver.Bitspec_arch then
      Bs_isa.Isa.Bitspec
    else Bs_isa.Isa.Classic
  in
  let power = Option.map (fun mk -> mk c) power in
  let config = { Machine.mode; fuel; fault = None; power; engine } in
  match Machine.run ~config c.Driver.program mem ~entry ~args with
  | exception Machine.Sim_trap t ->
      { no_obs with o_exn = Some ("trap:" ^ Outcome.trap_name t) }
  | exception Bs_interp.Memimage.Fault _ ->
      { no_obs with o_exn = Some "memory-fault" }
  | r ->
      { o_exn = None;
        o_r0 = r.Machine.r0;
        o_outcome = Outcome.to_string r.Machine.outcome;
        o_ctr = Counters.to_assoc r.Machine.ctr;
        o_misspec = r.Machine.misspec_pcs;
        o_caches =
          List.map
            (fun (c : Cache.t) -> (c.Cache.name, c.Cache.hits, c.Cache.misses))
            [ r.Machine.icache; r.Machine.dcache; r.Machine.l2 ];
        o_mem = Some (Bs_interp.Memimage.snapshot mem) }

let rec pair_diff xs ys =
  match (xs, ys) with
  | (k, u) :: xs', (_, v) :: ys' ->
      if u <> v then Printf.sprintf "%s = %d vs %d" k u v
      else pair_diff xs' ys'
  | _ -> "counter lists differ in length"

(* First component where two observations disagree, or [None]. *)
let first_diff a b =
  let str o = Option.value o ~default:"(none)" in
  if a.o_exn <> b.o_exn then
    Some (Printf.sprintf "exception: %s vs %s" (str a.o_exn) (str b.o_exn))
  else if a.o_outcome <> b.o_outcome then
    Some (Printf.sprintf "outcome: %s vs %s" a.o_outcome b.o_outcome)
  else if a.o_r0 <> b.o_r0 then
    Some (Printf.sprintf "r0: %Ld vs %Ld" a.o_r0 b.o_r0)
  else if a.o_ctr <> b.o_ctr then Some ("counter " ^ pair_diff a.o_ctr b.o_ctr)
  else if a.o_misspec <> b.o_misspec then Some "misspec_pcs attribution"
  else if a.o_caches <> b.o_caches then
    Some
      (String.concat "; "
         (List.map2
            (fun (n, h, m) (_, h', m') ->
              Printf.sprintf "%s hits %d/%d misses %d/%d" n h h' m m')
            a.o_caches b.o_caches))
  else
    match (a.o_mem, b.o_mem) with
    | Some x, Some y when not (Bs_interp.Memimage.snapshot_equal x y) ->
        Some "final memory image"
    | _ -> None

(* Difference [threaded] and [jit] against [classic] on one compiled
   program; returns true or fail_reportf's with the first divergence. *)
let check_compiled ?fuel ?power what (c : Driver.compiled) ~entry ~args =
  let reference =
    observe ?fuel ?power c Bs_sim.Machine.Classic ~entry ~args
  in
  List.iter
    (fun (name, engine) ->
      let o = observe ?fuel ?power c engine ~entry ~args in
      match first_diff reference o with
      | None -> ()
      | Some d ->
          QCheck.Test.fail_reportf "%s: %s diverges from classic on %s" what
            name d)
    other_engines;
  true

let compile_seed ?size seed =
  let source = Bs_fuzz.Gen.program ?size seed in
  match
    Driver.try_compile ~config:Driver.bitspec_config ~source
      ~train:[ (Bs_fuzz.Gen.entry, Bs_fuzz.Gen.train_args) ] ()
  with
  | Ok c when Diag.errors c.Driver.diagnostics = [] -> Some c
  | _ -> None (* rejected or degraded input: vacuous *)

let check_seed seed =
  match compile_seed seed with
  | None -> true
  | Some c ->
      check_compiled
        (Printf.sprintf "seed %d" seed)
        c ~entry:Bs_fuzz.Gen.entry
        ~args:[ Bs_fuzz.Gen.entry_arg seed ]

let prop_engines_agree =
  QCheck.Test.make ~name:"engines are byte-identical on random programs"
    ~count:100
    QCheck.(int_bound 1_000_000)
    check_seed

(* a few pinned seeds so failures reproduce deterministically in CI *)
let test_pinned_seeds () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true (check_seed seed))
    [ 1; 2; 3; 42; 1234; 99999; 424242; 7777777 ]

(* --- under an injected power trace -------------------------------------- *)

(* Under power failures the JIT degenerates to threaded dispatch (every
   instruction is a potential outage/checkpoint boundary), but the
   results must STILL be byte-identical — including restore counts,
   re-executed instructions and the journal-rolled memory image. *)
let check_power_seed seed =
  match compile_seed ~size:8 seed with
  | None -> true
  | Some c ->
      let open Bs_sim in
      let hot_pcs =
        let acc = ref [] in
        Array.iteri
          (fun pc s -> if s <> None then acc := pc :: !acc)
          c.Driver.program.Bs_backend.Asm.srcmap;
        List.rev !acc
      in
      let dist =
        match seed mod 3 with
        | 0 -> Powertrace.Periodic (50 + (seed mod 400))
        | 1 -> Powertrace.Exponential (float_of_int (100 + (seed mod 900)))
        | _ -> Powertrace.Adversarial { every = 60 + (seed mod 300) }
      in
      let policy =
        match (seed / 3) mod 3 with
        | 0 -> Checkpoint.Interval (25 + (seed mod 200))
        | 1 -> Checkpoint.Pre_store
        | _ -> Checkpoint.Pre_speculation
      in
      let power _ =
        (* fresh (identically seeded) trace per engine run: the trace
           object advances as the machine consumes it *)
        { Machine.trace =
            Powertrace.create ~seed:(Int64.of_int (seed + 1)) ~hot_pcs dist;
          policy;
          max_retries = 6 }
      in
      check_compiled ~power
        (Printf.sprintf "power seed %d (%s)" seed
           (Checkpoint.policy_name policy))
        c ~entry:Bs_fuzz.Gen.entry
        ~args:[ Bs_fuzz.Gen.entry_arg seed ]

let prop_engines_agree_power =
  QCheck.Test.make ~name:"engines are byte-identical under power traces"
    ~count:40
    QCheck.(int_bound 1_000_000)
    check_power_seed

(* --- corpus reproducers are engine-invariant ---------------------------- *)

(* Every reproducer in test/corpus/ gets the full oracle treatment under
   each engine; the rendered verdict (bucket, details, values) must not
   depend on the engine.  This differences the engines through the whole
   compile-and-compare pipeline, power reproducers included. *)
let test_corpus_engine_invariant () =
  let files = Bs_fuzz.Corpus.list_dir "corpus" in
  Alcotest.(check bool) "corpus is not empty" true (files <> []);
  let engines =
    [ ("classic", Bs_sim.Machine.Classic);
      ("threaded", Bs_sim.Machine.Threaded);
      ("jit", Bs_sim.Machine.Jit) ]
  in
  List.iter
    (fun path ->
      match Bs_fuzz.Corpus.load path with
      | None, _ -> Alcotest.failf "%s: no metadata header" path
      | Some m, source ->
          let describe engine =
            let train =
              [ (m.Bs_fuzz.Corpus.entry, m.Bs_fuzz.Corpus.train) ]
            in
            match m.Bs_fuzz.Corpus.power with
            | Some p ->
                Bs_fuzz.Oracle.describe_power
                  (Bs_fuzz.Oracle.run_power ~train ~engine ~source
                     ~entry:m.Bs_fuzz.Corpus.entry ~args:m.Bs_fuzz.Corpus.args
                     ~power:p ())
            | None ->
                Bs_fuzz.Oracle.describe
                  (Bs_fuzz.Oracle.run ?plant:m.Bs_fuzz.Corpus.fault ~train
                     ~engine ~source ~entry:m.Bs_fuzz.Corpus.entry
                     ~args:m.Bs_fuzz.Corpus.args ())
          in
          let expected = describe Bs_sim.Machine.Classic in
          List.iter
            (fun (name, engine) ->
              Alcotest.(check string)
                (Printf.sprintf "%s under %s" (Filename.basename path) name)
                expected (describe engine))
            (List.tl engines))
    files

(* --- simulated_mips ------------------------------------------------------ *)

let test_simulated_mips () =
  let source =
    "u32 f(u32 p) { u32 s; s = 0; while (p != 0) { s = s + p; p = p - 1; } \
     return s; }"
  in
  let c =
    Driver.compile ~config:Driver.bitspec_config ~source
      ~train:[ ("f", [ 17L ]) ] ()
  in
  let r = Driver.run_machine c ~entry:"f" ~args:[ 200_000L ] in
  let ctr = r.Bs_sim.Machine.ctr in
  Alcotest.(check bool) "run finished" true
    (r.Bs_sim.Machine.outcome = Outcome.Finished);
  Alcotest.(check bool) "wall clock measured" true
    (ctr.Bs_sim.Counters.wall_ns > 0);
  Alcotest.(check bool) "simulated_mips positive" true
    (Bs_sim.Counters.simulated_mips ctr > 0.0);
  (* wall_ns is host noise — it must stay out of the deterministic
     counter rendering that jobs-invariance smokes byte-compare *)
  Alcotest.(check bool) "wall_ns not in to_assoc" false
    (List.mem_assoc "wall_ns" (Bs_sim.Counters.to_assoc ctr))

(* --- memory-image layout boundary ---------------------------------------- *)

let bytes_global name count =
  { Bs_ir.Ir.gname = name; elem_width = 8; count; ginit = [||] }

let test_layout_boundary () =
  let open Bs_interp in
  let m g = { Bs_ir.Ir.funcs = []; globals = [ g ] } in
  let fit = Memimage.globals_base + 64 in
  (* a layout ending exactly at [size] fits *)
  let img = Memimage.create ~size:fit (m (bytes_global "g" 64)) in
  Alcotest.(check int) "globals_end = size" fit img.Memimage.globals_end;
  Memimage.write_int img ~width:8 (fit - 1) 0xAB;
  Alcotest.(check int) "last byte addressable" 0xAB
    (Memimage.read_int img ~width:8 (fit - 1));
  (* one byte more must fault *)
  (match Memimage.create ~size:fit (m (bytes_global "g" 65)) with
  | exception Memimage.Fault _ -> ()
  | _ -> Alcotest.fail "65 bytes in a 64-byte budget must fault");
  (* initialisers on the exact-fit layout land intact *)
  let init = { (bytes_global "h" 4) with Bs_ir.Ir.ginit = [| 1L; 2L; 3L; 4L |] } in
  let img2 =
    Memimage.create ~size:(Memimage.globals_base + 4) (m init)
  in
  let base = Memimage.addr_of img2 "h" in
  Alcotest.(check int) "last initialiser applied" 4
    (Memimage.read_int img2 ~width:8 (base + 3))

let test_duplicate_global () =
  let open Bs_interp in
  let m =
    { Bs_ir.Ir.funcs = [];
      globals = [ bytes_global "twice" 8; bytes_global "twice" 8 ] }
  in
  match Memimage.create ~size:65536 m with
  | exception Memimage.Layout_error d ->
      Alcotest.(check string) "diagnostic code" "BS-IMG-01" d.Diag.code;
      Alcotest.(check bool) "names the global" true
        (Str_exists.contains d.Diag.message "twice")
  | _ -> Alcotest.fail "duplicate globals must raise Layout_error"

(* --- journal / snapshot / restore semantics ------------------------------ *)

(* Random write workloads over the journal: an undo rolls back to the
   commit point; a [restore] both reinstates a snapshot's contents and
   disarms the journal (its entries describe overwritten contents that no
   longer exist). *)
let prop_journal_restore =
  QCheck.Test.make
    ~name:"journal undo and snapshot restore are exact and disarm correctly"
    ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let open Bs_interp in
      let rng = Rng.create (Int64.of_int (seed + 31337)) in
      let img =
        Memimage.create ~size:4096 { Bs_ir.Ir.funcs = []; globals = [] }
      in
      let scribble () =
        for _ = 1 to 1 + (seed mod 40) do
          let a =
            Int64.to_int (Int64.logand (Rng.next rng) 0x7FFL) land 0x7FC
          in
          let v = Int64.to_int (Int64.logand (Rng.next rng) 0xFFFFFFFFL) in
          Memimage.write_int img ~width:32 a v
        done
      in
      scribble ();
      let s0 = Memimage.snapshot img in
      (* 1. armed journal, more writes, undo -> exactly the commit point *)
      Memimage.journal_start img;
      scribble ();
      let dirty = Memimage.journal_pending img in
      Memimage.journal_undo img;
      if not (Memimage.snapshot_equal s0 (Memimage.snapshot img)) then
        QCheck.Test.fail_reportf "seed %d: journal_undo missed bytes" seed;
      if dirty < 0 then QCheck.Test.fail_reportf "negative dirty count";
      (* 2. restore reinstates the snapshot AND disarms the journal *)
      scribble ();
      Memimage.restore img s0;
      if img.Memimage.j_on then
        QCheck.Test.fail_reportf "seed %d: restore left the journal armed"
          seed;
      if img.Memimage.j_len <> 0 then
        QCheck.Test.fail_reportf "seed %d: restore left journal entries" seed;
      if not (Memimage.snapshot_equal s0 (Memimage.snapshot img)) then
        QCheck.Test.fail_reportf "seed %d: restore is not exact" seed;
      (* 3. the restored image re-journals from scratch *)
      Memimage.journal_start img;
      scribble ();
      Memimage.journal_undo img;
      Memimage.snapshot_equal s0 (Memimage.snapshot img))

let suite =
  [ Alcotest.test_case "pinned engine-equivalence seeds" `Quick
      test_pinned_seeds;
    QCheck_alcotest.to_alcotest prop_engines_agree;
    QCheck_alcotest.to_alcotest prop_engines_agree_power;
    Alcotest.test_case "corpus verdicts are engine-invariant" `Quick
      test_corpus_engine_invariant;
    Alcotest.test_case "simulated_mips is reported" `Quick
      test_simulated_mips;
    Alcotest.test_case "layout boundary is exact" `Quick test_layout_boundary;
    Alcotest.test_case "duplicate globals raise BS-IMG-01" `Quick
      test_duplicate_global;
    QCheck_alcotest.to_alcotest prop_journal_restore ]
