open Bs_support
open Bitspec
open Bs_interp

(* Interpreter engine equivalence.

   The closure-compiled execution engine ([Interp.Compiled]) exists for
   host speed only: for any module, any input, with or without
   profiling, it must produce results byte-identical to the tree-walking
   reference ([Interp.Tree]) — return value, outcome, trap message, step
   and call counts, misspeculation totals and per-site attribution, the
   final memory image, and every number the profiler records (per-
   variable min/max/sum/count and both module-wide histograms).

   Each random seed is differenced on two modules: the pristine lowering
   (plain IR, the oracle's reference path) and the Driver-compiled
   bitspec IR (squeezed code with speculative regions, exercising the
   misspeculation guard exits). *)

(* One run's complete observable state. *)
type obs = {
  o_trap : string option;  (* a raise makes everything else unobservable *)
  o_ret : int64 option;
  o_outcome : string;
  o_steps : int;
  o_misspecs : int;
  o_calls : int;
  o_sites : ((string * string * int) * int) list;
  o_profile :
    ((string * int * int * int * int * int) list * int list * int list)
    option;
  o_mem : Memimage.snapshot option;
}

let no_obs =
  { o_trap = None; o_ret = None; o_outcome = ""; o_steps = 0;
    o_misspecs = 0; o_calls = 0; o_sites = []; o_profile = None;
    o_mem = None }

(* Everything the profiler recorded, in a canonical order. *)
let profile_obs (p : Profile.t) =
  let vars = ref [] in
  Profile.iter_vars p (fun ~func ~iid s ->
      vars :=
        (func, iid, s.Profile.s_min, s.Profile.s_max, s.Profile.s_sum,
         s.Profile.s_count)
        :: !vars);
  (List.sort compare !vars,
   Array.to_list p.Profile.req_hist,
   Array.to_list p.Profile.prog_hist)

let observe ?setup ~engine ~profiled (m : Bs_ir.Ir.modul) ~entry ~args =
  let profile = if profiled then Some (Profile.create ()) else None in
  let opts = { Interp.default_opts with Interp.engine; profile } in
  match Interp.run_fresh ~opts ?setup m ~entry ~args with
  | exception Interp.Trap msg -> { no_obs with o_trap = Some ("trap:" ^ msg) }
  | exception Memimage.Fault f -> { no_obs with o_trap = Some ("fault:" ^ f) }
  | r, mem ->
      let snap = Memimage.snapshot mem in
      Memimage.recycle mem;
      { o_trap = None;
        o_ret = r.Interp.ret;
        o_outcome = Outcome.to_string r.Interp.outcome;
        o_steps = r.Interp.steps;
        o_misspecs = r.Interp.misspecs;
        o_calls = r.Interp.calls;
        o_sites = r.Interp.misspec_sites;
        o_profile = Option.map profile_obs profile;
        o_mem = Some snap }

(* First component where two observations disagree, or [None]. *)
let first_diff a b =
  let str o = Option.value o ~default:"(none)" in
  let i64 o = Option.fold ~none:"(none)" ~some:Int64.to_string o in
  if a.o_trap <> b.o_trap then
    Some (Printf.sprintf "exception: %s vs %s" (str a.o_trap) (str b.o_trap))
  else if a.o_outcome <> b.o_outcome then
    Some (Printf.sprintf "outcome: %s vs %s" a.o_outcome b.o_outcome)
  else if a.o_ret <> b.o_ret then
    Some (Printf.sprintf "ret: %s vs %s" (i64 a.o_ret) (i64 b.o_ret))
  else if a.o_steps <> b.o_steps then
    Some (Printf.sprintf "steps: %d vs %d" a.o_steps b.o_steps)
  else if a.o_calls <> b.o_calls then
    Some (Printf.sprintf "calls: %d vs %d" a.o_calls b.o_calls)
  else if a.o_misspecs <> b.o_misspecs then
    Some (Printf.sprintf "misspecs: %d vs %d" a.o_misspecs b.o_misspecs)
  else if a.o_sites <> b.o_sites then Some "misspec-site attribution"
  else if a.o_profile <> b.o_profile then Some "profile contents"
  else
    match (a.o_mem, b.o_mem) with
    | Some x, Some y when not (Memimage.snapshot_equal x y) ->
        Some "final memory image"
    | _ -> None

(* Difference [Compiled] against [Tree] on one module, with and without
   a profiler attached. *)
let check_module ?setup what (m : Bs_ir.Ir.modul) ~entry ~args =
  List.iter
    (fun profiled ->
      let reference =
        observe ?setup ~engine:Interp.Tree ~profiled m ~entry ~args
      in
      let o = observe ?setup ~engine:Interp.Compiled ~profiled m ~entry ~args in
      match first_diff reference o with
      | None -> ()
      | Some d ->
          QCheck.Test.fail_reportf
            "%s (%s profiling): compiled diverges from tree on %s" what
            (if profiled then "with" else "without")
            d)
    [ false; true ];
  true

let check_seed seed =
  let source = Bs_fuzz.Gen.program seed in
  match
    Driver.try_compile ~config:Driver.bitspec_config ~source
      ~train:[ (Bs_fuzz.Gen.entry, Bs_fuzz.Gen.train_args) ] ()
  with
  | Ok c when Diag.errors c.Driver.diagnostics = [] ->
      let args = [ Bs_fuzz.Gen.entry_arg seed ] in
      let pristine = Bs_frontend.Lower.compile source in
      ignore
        (check_module
           (Printf.sprintf "seed %d, pristine IR" seed)
           pristine ~entry:Bs_fuzz.Gen.entry ~args);
      check_module
        (Printf.sprintf "seed %d, bitspec IR" seed)
        c.Driver.ir ~entry:Bs_fuzz.Gen.entry ~args
  | _ -> true (* rejected or degraded input: vacuous *)

let prop_interp_engines_agree =
  QCheck.Test.make
    ~name:"interpreter engines are byte-identical on random programs"
    ~count:100
    QCheck.(int_bound 1_000_000)
    check_seed

(* a few pinned seeds so failures reproduce deterministically in CI *)
let test_pinned_seeds () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true (check_seed seed))
    [ 1; 2; 3; 42; 1234; 99999; 424242; 7777777 ]

(* --- corpus reproducers are interp-engine-invariant ---------------------- *)

(* Every non-power reproducer in test/corpus/ gets the full oracle
   treatment under each interpreter engine; the rendered verdict
   (bucket, details, values) must not depend on the engine.  This
   differences the engines through the whole compile-and-compare
   pipeline, including planted-fault reproducers.  (Power reproducers
   replay machine-vs-machine and never consult the interpreter, so the
   engine choice cannot reach them.)  Each reproducer's IR is also
   differenced directly, profiler attached. *)
let test_corpus_engine_invariant () =
  let files = Bs_fuzz.Corpus.list_dir "corpus" in
  Alcotest.(check bool) "corpus is not empty" true (files <> []);
  List.iter
    (fun path ->
      match Bs_fuzz.Corpus.load path with
      | None, _ -> Alcotest.failf "%s: no metadata header" path
      | Some { Bs_fuzz.Corpus.power = Some _; _ }, _ -> ()
      | Some m, source ->
          let train = [ (m.Bs_fuzz.Corpus.entry, m.Bs_fuzz.Corpus.train) ] in
          let describe interp_engine =
            Bs_fuzz.Oracle.describe
              (Bs_fuzz.Oracle.run ?plant:m.Bs_fuzz.Corpus.fault ~train
                 ~interp_engine ~source ~entry:m.Bs_fuzz.Corpus.entry
                 ~args:m.Bs_fuzz.Corpus.args ())
          in
          Alcotest.(check string)
            (Printf.sprintf "%s verdict" (Filename.basename path))
            (describe Interp.Tree)
            (describe Interp.Compiled);
          (* and the raw interpreter observation on the pristine IR *)
          match Bs_frontend.Lower.compile source with
          | exception _ -> () (* rejected source: oracle covered it *)
          | pristine ->
              Alcotest.(check bool)
                (Printf.sprintf "%s pristine IR" (Filename.basename path))
                true
                (check_module
                   (Filename.basename path)
                   pristine ~entry:m.Bs_fuzz.Corpus.entry
                   ~args:m.Bs_fuzz.Corpus.args))
    files

(* --- workloads: the numbers behind the paper's figures ------------------- *)

(* The real benchmarks go through [check_module] too — they are the
   programs whose profiles shape every figure, so engine divergence
   there would silently skew the evaluation.  One representative each of
   the table-driven, recursive and arithmetic-heavy families keeps the
   test quick. *)
let test_workload_equivalence () =
  List.iter
    (fun name ->
      match
        List.find_opt
          (fun (w : Bs_workloads.Workload.t) -> w.name = name)
          Bs_workloads.Registry.all
      with
      | None -> Alcotest.failf "workload %s missing from registry" name
      | Some w ->
          let m = Bs_frontend.Lower.compile w.source in
          ignore (Expander.run m Expander.default);
          let pi = w.Bs_workloads.Workload.train in
          Alcotest.(check bool) name true
            (check_module ~setup:(pi.Bs_workloads.Workload.setup m) name m
               ~entry:w.entry ~args:pi.Bs_workloads.Workload.args))
    [ "CRC32"; "bitcount"; "qsort" ]

let suite =
  [ Alcotest.test_case "pinned interp-engine seeds" `Quick test_pinned_seeds;
    QCheck_alcotest.to_alcotest prop_interp_engines_agree;
    Alcotest.test_case "corpus verdicts are interp-engine-invariant" `Quick
      test_corpus_engine_invariant;
    Alcotest.test_case "paper workloads are interp-engine-invariant" `Quick
      test_workload_equivalence ]
