open Bitspec
open Bs_workloads
open Bs_interp

(* Tests for the observability layer: deterministic span traces under an
   injected clock, Chrome-JSON well-formedness, remark-stream stability
   across job counts, and misspeculation attribution summing to the
   simulators' misspec counters. *)

(* A clock that ticks one second per read — timestamps become the event
   sequence numbers, so span ordering tests are exact. *)
let ticking_clock () =
  let t = ref (-1.0) in
  fun () ->
    t := !t +. 1.0;
    !t

let shape_of_events evs =
  List.map
    (fun (e : Bs_obs.Trace.event) ->
      ( e.name,
        (match e.ph with
        | Bs_obs.Trace.B -> "B"
        | E -> "E"
        | I -> "I"
        | S -> "s"
        | T -> "t"
        | F -> "f"),
        e.ts ))
    evs

let test_span_nesting () =
  Bs_obs.Trace.enable ~clock:(ticking_clock ()) ();
  Bs_obs.Trace.with_span "outer" (fun () ->
      Bs_obs.Trace.with_span "inner" (fun () -> ()));
  Bs_obs.Trace.disable ();
  Alcotest.(check (list (triple string string (float 0.0))))
    "nested B/E order with deterministic timestamps"
    [ ("outer", "B", 0.0); ("inner", "B", 1.0); ("inner", "E", 2.0);
      ("outer", "E", 3.0) ]
    (shape_of_events (Bs_obs.Trace.events ()));
  Alcotest.(check (list (triple string (float 0.0) int)))
    "phase table folds balanced pairs in first-begin order"
    [ ("outer", 3.0, 1); ("inner", 1.0, 1) ]
    (Bs_obs.Trace.phase_table ());
  Bs_obs.Trace.reset ()

let test_span_exception () =
  Bs_obs.Trace.enable ~clock:(ticking_clock ()) ();
  (try Bs_obs.Trace.with_span "boom" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Bs_obs.Trace.disable ();
  Alcotest.(check (list (triple string string (float 0.0))))
    "end event lands even when the body raises"
    [ ("boom", "B", 0.0); ("boom", "E", 1.0) ]
    (shape_of_events (Bs_obs.Trace.events ()));
  Bs_obs.Trace.reset ()

let count_sub sub s =
  let n = String.length sub and m = String.length s in
  let c = ref 0 in
  for i = 0 to m - n do
    if String.sub s i n = sub then incr c
  done;
  !c

let test_chrome_json_balanced () =
  Bs_obs.Trace.enable ~clock:(ticking_clock ()) ();
  Bs_obs.Trace.with_span "a" (fun () ->
      Bs_obs.Trace.with_span ~args:[ ("k", "v\"quoted\"") ] "b" (fun () -> ());
      Bs_obs.Trace.instant "mark");
  Bs_obs.Trace.disable ();
  let json = Bs_obs.Trace.to_chrome_json () in
  Bs_obs.Trace.reset ();
  Alcotest.(check int)
    "as many begin as end events"
    (count_sub "\"ph\":\"B\"" json)
    (count_sub "\"ph\":\"E\"" json);
  Alcotest.(check int) "two spans" 2 (count_sub "\"ph\":\"B\"" json);
  Alcotest.(check int) "one instant" 1 (count_sub "\"ph\":\"i\"" json);
  Alcotest.(check bool) "quotes in args are escaped" true
    (count_sub "v\\\"quoted\\\"" json = 1)

(* --------------------------------------------------------------------- *)

let crc = Registry.find "CRC32"

(* Direct driver compile (bypassing the compile cache) so each call
   regenerates its remark stream from scratch. *)
let compile_crc () =
  Driver.compile ~config:Driver.bitspec_config ~source:crc.Workload.source
    ~setup:crc.Workload.train.Workload.setup
    ~train:[ (crc.Workload.entry, crc.Workload.train.Workload.args) ] ()

let remark_strings (c : Driver.compiled) =
  List.map Bs_obs.Remark.to_string c.Driver.remarks

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let test_remark_stream () =
  let c = compile_crc () in
  let r = remark_strings c in
  Alcotest.(check bool) "remarks are emitted" true (r <> []);
  Alcotest.(check bool) "a squeeze remark is present" true
    (List.exists (starts_with "squeezed") r);
  Alcotest.(check (list string))
    "stream is canonically sorted"
    (List.map Bs_obs.Remark.to_string
       (List.sort Bs_obs.Remark.compare c.Driver.remarks))
    r

let test_remark_jobs_identity () =
  let seq = remark_strings (compile_crc ()) in
  let par =
    Bs_exec.Pool.map ~jobs:4 (fun () -> remark_strings (compile_crc ()))
      (Array.make 4 ())
  in
  Array.iter
    (Alcotest.(check (list string)) "remarks identical under jobs=4" seq)
    par

(* --------------------------------------------------------------------- *)

let sum_counts l = List.fold_left (fun acc (_, n) -> acc + n) 0 l

let test_misspec_attribution_machine () =
  let c = compile_crc () in
  let r =
    Driver.run_machine ~setup:(crc.Workload.test.Workload.setup c.Driver.ir) c
      ~entry:crc.Workload.entry ~args:crc.Workload.test.Workload.args
  in
  let misspecs = r.Bs_sim.Machine.ctr.Bs_sim.Counters.misspecs in
  Alcotest.(check bool) "CRC32 misspeculates under BITSPEC" true (misspecs > 0);
  Alcotest.(check int) "per-pc counts sum to the misspec counter" misspecs
    (sum_counts r.Bs_sim.Machine.misspec_pcs);
  let sites = Experiment.misspec_sites c r in
  Alcotest.(check int) "site histogram sums to the misspec counter" misspecs
    (sum_counts sites);
  Alcotest.(check bool) "every site is attributed to a source line" true
    (List.for_all (fun ((fn, _, line), _) -> fn <> "?" && line > 0) sites)

let test_misspec_attribution_interp () =
  let c = compile_crc () in
  let r, _ =
    Interp.run_fresh
      ~setup:(crc.Workload.test.Workload.setup c.Driver.ir)
      c.Driver.ir ~entry:crc.Workload.entry
      ~args:crc.Workload.test.Workload.args
  in
  Alcotest.(check int) "interp site counts sum to its misspec counter"
    r.Interp.misspecs
    (sum_counts r.Interp.misspec_sites)

let suite =
  [ Alcotest.test_case "span nesting under injected clock" `Quick
      test_span_nesting;
    Alcotest.test_case "span end survives exceptions" `Quick
      test_span_exception;
    Alcotest.test_case "chrome JSON is balanced and escaped" `Quick
      test_chrome_json_balanced;
    Alcotest.test_case "remark stream is sorted and non-empty" `Quick
      test_remark_stream;
    Alcotest.test_case "remarks identical at jobs=1 and jobs=4" `Quick
      test_remark_jobs_identity;
    Alcotest.test_case "machine misspec attribution totals" `Quick
      test_misspec_attribution_machine;
    Alcotest.test_case "interp misspec attribution totals" `Quick
      test_misspec_attribution_interp ]
