open Bs_ir
open Bs_frontend
open Bs_interp
open Bs_analysis

(* Tests for the bitwidth analyses behind Figure 1: the profiler's
   statistics, demanded-bits, and basic-block coercion. *)

let profile_of src ~entry ~args =
  let m = Lower.compile src in
  let profile = Profile.create () in
  let opts = { Interp.default_opts with profile = Some profile } in
  ignore (Interp.run_fresh ~opts m ~entry ~args);
  (m, profile)

let test_profile_stats () =
  let m, p =
    profile_of
      "u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s += i; return s; }"
      ~entry:"f" ~args:[ 10L ]
  in
  let f = List.hd m.Ir.funcs in
  (* find the add defining s (+= i): its max value is 45 -> 6 bits *)
  let adds =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter
          (fun (i : Ir.instr) ->
            match i.Ir.op with Ir.Bin (Ir.Add, _, _) -> true | _ -> false)
          b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check bool) "adds profiled" true
    (List.for_all
       (fun (i : Ir.instr) ->
         Profile.stats p ~func:"f" ~iid:i.Ir.iid <> None)
       adds);
  List.iter
    (fun (i : Ir.instr) ->
      match Profile.stats p ~func:"f" ~iid:i.Ir.iid with
      | Some s ->
          Alcotest.(check bool) "max sane" true (s.Profile.s_max <= 6);
          Alcotest.(check bool) "min <= max" true (s.Profile.s_min <= s.Profile.s_max);
          Alcotest.(check bool) "count > 0" true (s.Profile.s_count > 0)
      | None -> ())
    adds

let test_heuristic_targets () =
  let _, p =
    profile_of
      "u32 f(u32 n) { u32 x = 1; for (u32 i = 0; i < n; i += 1) x = x * 2; return x; }"
      ~entry:"f" ~args:[ 12L ]
  in
  (* x takes values 2..4096: MIN class 8, MAX class 16 *)
  let found = ref false in
  Profile.iter_vars p (fun ~func ~iid (s : Profile.var_stats) ->
      if func = "f" && s.Profile.s_max >= 13 then begin
        found := true;
        let t h = Option.get (Profile.target p h ~func ~iid) in
        Alcotest.(check int) "MAX class" 16 (t Profile.Hmax);
        Alcotest.(check int) "MIN class" 8 (t Profile.Hmin);
        Alcotest.(check bool) "AVG between" true
          (t Profile.Havg >= t Profile.Hmin && t Profile.Havg <= t Profile.Hmax)
      end);
  Alcotest.(check bool) "found the doubling variable" true !found

let test_distributions_sum () =
  let _, p =
    profile_of
      "u8 buf[64];\n\
       u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) { buf[i & 63] = (u8)i; s += buf[i & 63]; } return s; }"
      ~entry:"f" ~args:[ 100L ]
  in
  let close_to_one a =
    let s = Array.fold_left ( +. ) 0.0 a in
    abs_float (s -. 1.0) < 1e-9
  in
  Alcotest.(check bool) "required sums to 1" true
    (close_to_one (Profile.required_distribution p));
  Alcotest.(check bool) "programmer sums to 1" true
    (close_to_one (Profile.programmer_distribution p));
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (Profile.heuristic_name h ^ " sums to 1")
        true
        (close_to_one (Profile.heuristic_distribution p h)))
    [ Profile.Hmax; Profile.Havg; Profile.Hmin ]

let test_required_le_programmer () =
  (* the share of dynamic instructions classified <= 8 bits can only grow
     when moving from programmer width to required width (Fig 1a vs 1b) *)
  let _, p =
    profile_of
      "u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i += 1) s = (s + i) & 63; return s; }"
      ~entry:"f" ~args:[ 50L ]
  in
  let req = Profile.required_distribution p in
  let prog = Profile.programmer_distribution p in
  Alcotest.(check bool) "more 8-bit under required" true (req.(0) >= prog.(0))

let test_demanded_bits () =
  (* the masked value demands only its low 4 bits; the analysis must see
     through the add chain *)
  let m =
    Lower.compile
      "u8 out[4];\nu32 f(u32 x) { u32 y = x + 123; out[0] = (u8)(y & 15); return 0; }"
  in
  let f = Option.get (Ir.find_func m "f") in
  let db = Demanded_bits.compute f in
  let add =
    List.find_map
      (fun (b : Ir.block) ->
        List.find_map
          (fun (i : Ir.instr) ->
            match i.Ir.op with
            | Ir.Bin (Ir.Add, _, Ir.Const c) when c.Ir.cval = 123L -> Some i
            | _ -> None)
          b.Ir.instrs)
      f.Ir.blocks
  in
  (match add with
  | Some i ->
      let sel = Demanded_bits.selection db f ~iid:i.Ir.iid in
      Alcotest.(check int) "narrowed to 8-bit class" 8 sel
  | None -> Alcotest.fail "add not found");
  (* a returned value demands everything *)
  let m2 = Lower.compile "u32 f(u32 x) { return x + 1; }" in
  let f2 = Option.get (Ir.find_func m2 "f") in
  let db2 = Demanded_bits.compute f2 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.op with
          | Ir.Bin (Ir.Add, _, _) ->
              Alcotest.(check int) "full width demanded" 32
                (Demanded_bits.selection db2 f2 ~iid:i.Ir.iid)
          | _ -> ())
        b.Ir.instrs)
    f2.Ir.blocks

let test_demanded_bits_shifts () =
  (* (x << 8) & 0xFF00 stored as u16: x demands its low byte only *)
  let m =
    Lower.compile
      "u16 out[2];\nu32 f(u32 x) { out[0] = (u16)((x << 8) & 0xFF00); return 0; }"
  in
  let f = Option.get (Ir.find_func m "f") in
  let db = Demanded_bits.compute f in
  (* the parameter's demand must not exceed 8 bits *)
  let p0 = List.hd f.Ir.param_instrs in
  match Hashtbl.find_opt db p0.Ir.iid with
  | Some mask ->
      Alcotest.(check bool) "param demands <= 8 bits" true
        (Bs_ir.Width.required_bits mask <= 8)
  | None -> Alcotest.fail "parameter has no demand"

let test_block_coerce_worst_case () =
  (* one wide variable in the block drags every narrow one with it
     (the paper's susan-corners observation, Fig 1d) *)
  let src =
    "u32 f(u32 n) {\n\
     u32 s = 0;\n\
     u32 wide = 0;\n\
     for (u32 i = 0; i < n; i += 1) {\n\
     u32 narrow = i & 7;\n\
     wide = wide + 100000;\n\
     s += narrow;\n\
     }\n\
     return s + (wide >> 16); }"
  in
  let m, p = profile_of src ~entry:"f" ~args:[ 30L ] in
  let sel = Block_coerce.selection m p in
  let req = Profile.required_distribution p in
  let coerced = Profile.selection_distribution p ~select:sel in
  (* coercion must lose 8-bit share relative to required bits *)
  Alcotest.(check bool)
    (Printf.sprintf "coerced 8-bit share (%.2f) < required (%.2f)" coerced.(0)
       req.(0))
    true
    (coerced.(0) < req.(0))

let suite =
  [ Alcotest.test_case "profiler statistics" `Quick test_profile_stats;
    Alcotest.test_case "MAX/AVG/MIN targets" `Quick test_heuristic_targets;
    Alcotest.test_case "distributions sum to 1" `Quick test_distributions_sum;
    Alcotest.test_case "required >= programmer at 8 bits" `Quick
      test_required_le_programmer;
    Alcotest.test_case "demanded bits narrows masked chains" `Quick
      test_demanded_bits;
    Alcotest.test_case "demanded bits through shifts" `Quick
      test_demanded_bits_shifts;
    Alcotest.test_case "block coercion worst case (Fig 1d)" `Quick
      test_block_coerce_worst_case ]
