let () =
  Alcotest.run "bitspec"
    [ ("width", Test_width.suite);
      ("ir", Test_ir.suite);
      ("frontend", Test_frontend.suite);
      ("frontend-2", Test_frontend2.suite);
      ("interp", Test_interp.suite);
      ("interp-engines", Test_interp_engines.suite);
      ("opt", Test_opt.suite);
      ("analysis", Test_analysis.suite);
      ("squeezer", Test_squeezer.suite);
      ("passes", Test_passes.suite);
      ("isa", Test_isa.suite);
      ("machine", Test_machine.suite);
      ("engines", Test_engines.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("vulnerability", Test_vulnerability.suite);
      ("backend", Test_backend.suite);
      ("workloads", Test_workloads.suite);
      ("known-answers", Test_known_answers.suite);
      ("resilience", Test_resilience.suite);
      ("fuzz", Test_fuzz.suite);
      ("exec", Test_exec.suite);
      ("serve", Test_serve.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite) ]
