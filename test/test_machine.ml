open Bs_isa
open Bs_sim
open Isa

(* Machine-level unit tests: hand-assembled programs exercising individual
   instruction semantics, slice aliasing, condition codes, memory widths,
   the Δ-redirect misspeculation mechanism, and calling convention
   plumbing — independent of the compiler. *)

let sl r b = { sl_reg = r; sl_byte = b }

(* Build a runnable program from raw instructions; entry at 0, HALT
   appended.  [delta] positions a skeleton area when testing
   misspeculation. *)
let program ?(delta = 0) insns : Bs_backend.Asm.program =
  let code = Array.of_list (insns @ [ HALT ]) in
  { Bs_backend.Asm.code;
    prov = Array.make (Array.length code) PNormal;
    srcmap = Array.make (Array.length code) None;
    entries = (let t = Hashtbl.create 1 in Hashtbl.replace t "main" 0; t);
    delta;
    halt_pc = Array.length code - 1;
    handler_pcs = Hashtbl.create 1 }

let exec ?(mode = Bitspec) ?(fuel = 100000) ?mem insns =
  let m = { Bs_ir.Ir.funcs = []; globals = [] } in
  let memory =
    match mem with Some m -> m | None -> Bs_interp.Memimage.create ~size:65536 m
  in
  Machine.run ~config:{ Machine.mode; fuel; fault = None; power = None; engine = Machine.Classic }
    (program insns)
    memory ~entry:"main" ~args:[]

let r0_of insns = (exec insns).Machine.r0

let check64 = Alcotest.(check int64)

let test_mov_movw_movt () =
  check64 "movw" 0xBEEFL (r0_of [ MOVW (0, 0xBEEF) ]);
  check64 "movw+movt" 0xDEADBEEFL
    (r0_of [ MOVW (0, 0xBEEF); MOVT (0, 0xDEAD) ]);
  check64 "mov" 42L (r0_of [ MOVW (1, 42); MOV (0, 1) ])

let test_alu () =
  let binop op a b =
    r0_of [ MOVW (1, a); MOVW (2, b); ALU (op, 0, 1, Reg 2) ]
  in
  check64 "add" 30L (binop OpAdd 10 20);
  check64 "sub wrap" 0xFFFFFFFFL (binop OpSub 10 11);
  check64 "and" 8L (binop OpAnd 12 10);
  check64 "orr" 14L (binop OpOrr 12 10);
  check64 "eor" 6L (binop OpEor 12 10);
  check64 "lsl" 48L (binop OpLsl 12 2);
  check64 "lsr" 3L (binop OpLsr 12 2);
  check64 "imm" 112L (r0_of [ MOVW (1, 100); ALU (OpAdd, 0, 1, Imm 12) ]);
  (* asr on a negative value *)
  check64 "asr sign" 0xFFFFFFFEL
    (r0_of
       [ MOVW (1, 0xFFF8); MOVT (1, 0xFFFF); MOVW (2, 2);
         ALU (OpAsr, 0, 1, Reg 2) ])

let test_mul_div () =
  check64 "mul" 391L (r0_of [ MOVW (1, 17); MOVW (2, 23); MUL (0, 1, 2) ]);
  check64 "udiv" 5L
    (r0_of [ MOVW (1, 17); MOVW (2, 3); DIV (Unsigned, 0, 1, 2) ]);
  check64 "sdiv" 0xFFFFFFFBL
    (r0_of
       [ MOVW (1, 0xFFEF); MOVT (1, 0xFFFF); (* -17 *)
         MOVW (2, 3); DIV (Signed, 0, 1, 2) ])

let test_cset_conditions () =
  let cmp_cset c a b =
    r0_of [ MOVW (1, a); MOVW (2, b); CMP (1, Reg 2); CSET (c, 0) ]
  in
  check64 "eq" 1L (cmp_cset CEq 5 5);
  check64 "ne" 0L (cmp_cset CNe 5 5);
  check64 "ult" 1L (cmp_cset CUlt 3 5);
  check64 "uge" 0L (cmp_cset CUge 3 5);
  (* signed: 0xFFFFFFFF is -1 < 1 *)
  check64 "slt negative" 1L
    (r0_of
       [ MOVW (1, 0xFFFF); MOVT (1, 0xFFFF); MOVW (2, 1); CMP (1, Reg 2);
         CSET (CSlt, 0) ]);
  check64 "ult unsigned-max" 0L
    (r0_of
       [ MOVW (1, 0xFFFF); MOVT (1, 0xFFFF); MOVW (2, 1); CMP (1, Reg 2);
         CSET (CUlt, 0) ])

let test_branches () =
  (* skip over the poisoning instruction *)
  check64 "b skips" 1L (r0_of [ MOVW (0, 1); B 3; MOVW (0, 99); NOP ]);
  check64 "bc taken" 1L
    (r0_of
       [ MOVW (0, 1); MOVW (1, 3); CMP (1, Imm 3); BC (CEq, 5); MOVW (0, 99);
         NOP ]);
  check64 "bc not taken" 99L
    (r0_of
       [ MOVW (0, 1); MOVW (1, 4); CMP (1, Imm 3); BC (CEq, 6); MOVW (0, 99);
         NOP ])

let test_slices_alias_register_bytes () =
  (* writing byte 1 of r1 must leave other bytes intact; reading slices
     extracts exactly one byte *)
  let r =
    exec
      [ MOVW (1, 0x3344); MOVT (1, 0x1122);   (* r1 = 0x11223344 *)
        BMOVI (sl 1 1, 0xAB);                 (* r1 = 0x1122AB44 *)
        BEXT (Unsigned, 0, sl 1 1) ]
  in
  check64 "slice write+read" 0xABL r.Machine.r0;
  let r2 =
    exec
      [ MOVW (1, 0x3344); MOVT (1, 0x1122); BMOVI (sl 1 1, 0xAB); MOV (0, 1) ]
  in
  check64 "rest of register intact" 0x1122AB44L r2.Machine.r0

let test_balu_and_bext_sign () =
  check64 "badd" 30L
    (r0_of
       [ BMOVI (sl 1 0, 10); BMOVI (sl 2 0, 20);
         BALU (BAdd, sl 0 0, sl 1 0, Sl (sl 2 0)); BEXT (Unsigned, 0, sl 0 0) ]);
  check64 "bsext negative" 0xFFFFFF80L
    (r0_of [ BMOVI (sl 1 0, 0x80); BEXT (Signed, 0, sl 1 0) ]);
  check64 "balu imm4" 9L
    (r0_of
       [ BMOVI (sl 1 2, 14); BALU (BSub, sl 0 1, sl 1 2, BImm 5);
         BEXT (Unsigned, 0, sl 0 1) ])

let test_misspec_redirect () =
  (* layout: [0..2] work, [3] = skeleton branch to handler at [5].
     BADD of 200+100 overflows the slice: PC := 2 + Δ(1) = 3. *)
  let insns =
    [ BMOVI (sl 1 0, 200);                      (* 0 *)
      BMOVI (sl 2 0, 100);                      (* 1 *)
      BALU (BAdd, sl 3 0, sl 1 0, Sl (sl 2 0)); (* 2: misspeculates *)
      B 5;                                      (* 3: skeleton *)
      NOP;                                      (* 4: fallthrough if no misspec *)
      MOVW (0, 777) ]                           (* 5: handler *)
  in
  let p = program ~delta:1 insns in
  let m = { Bs_ir.Ir.funcs = []; globals = [] } in
  let r =
    Machine.run ~config:{ Machine.mode = Bitspec; fuel = 1000; fault = None; power = None;
                  engine = Machine.Classic }
      p
      (Bs_interp.Memimage.create ~size:65536 m) ~entry:"main" ~args:[]
  in
  check64 "handler ran" 777L r.Machine.r0;
  Alcotest.(check int) "one misspec" 1 r.Machine.ctr.Counters.misspecs;
  (* the destination slice must NOT have been written *)
  check64 "no commit" 777L r.Machine.r0

let test_no_misspec_in_range () =
  let r =
    exec
      [ BMOVI (sl 1 0, 100); BMOVI (sl 2 0, 100);
        BALU (BAdd, sl 0 0, sl 1 0, Sl (sl 2 0)); BEXT (Unsigned, 0, sl 0 0) ]
  in
  check64 "200 fits" 200L r.Machine.r0;
  Alcotest.(check int) "no misspec" 0 r.Machine.ctr.Counters.misspecs

let test_memory_widths () =
  let m = { Bs_ir.Ir.funcs = []; globals = [] } in
  let mem = Bs_interp.Memimage.create ~size:65536 m in
  let r =
    Machine.run ~config:Machine.default_config
      (program
         [ MOVW (1, 0x1000);
           MOVW (2, 0xBEEF); MOVT (2, 0xDEAD);
           STR (W32, 2, 1, 0);
           LDR (W8, Unsigned, 3, 1, 1);        (* byte 1 = 0xBE *)
           LDR (W16, Unsigned, 4, 1, 2);       (* half at 2 = 0xDEAD *)
           LDR (W8, Signed, 5, 1, 3);          (* 0xDE sign-extends *)
           ALU (OpAdd, 0, 3, Reg 4);
           ALU (OpAdd, 0, 0, Reg 5) ])
      mem ~entry:"main" ~args:[]
  in
  (* 0xBE + 0xDEAD + 0xFFFFFFDE = 0xDF49 (mod 2^32) *)
  check64 "mixed widths" 0xDF49L r.Machine.r0

let test_slice_indexed_memory () =
  let r =
    exec
      [ MOVW (1, 0x2000);
        BMOVI (sl 2 1, 5);                     (* index 5 in a slice *)
        MOVW (3, 0x77);
        STR (W8, 3, 1, 5);
        BLDRB (sl 0 0, 1, BIdx (sl 2 1));
        BEXT (Unsigned, 0, sl 0 0) ]
  in
  check64 "Mem[Rn + Bm]" 0x77L r.Machine.r0

let test_bldrs_misspec_on_wide_value () =
  let insns =
    [ MOVW (1, 0x3000);
      MOVW (2, 0x1FF);                          (* 511 needs 9 bits *)
      STR (W32, 2, 1, 0);
      BLDRS (sl 0 0, 1, BOff 0);                (* 3: misspeculates *)
      B 6;                                      (* 4: skeleton *)
      NOP;
      MOVW (0, 555) ]                           (* 6: handler *)
  in
  let p = program ~delta:1 insns in
  let m = { Bs_ir.Ir.funcs = []; globals = [] } in
  let r =
    Machine.run ~config:{ Machine.mode = Bitspec; fuel = 1000; fault = None; power = None;
                  engine = Machine.Classic }
      p
      (Bs_interp.Memimage.create ~size:65536 m) ~entry:"main" ~args:[]
  in
  check64 "spec load misspec" 555L r.Machine.r0;
  Alcotest.(check int) "counted" 1 r.Machine.ctr.Counters.misspecs

let test_btrn () =
  check64 "fits" 200L
    (r0_of [ MOVW (1, 200); BTRN (sl 0 0, 1); BEXT (Unsigned, 0, sl 0 0) ]);
  let insns =
    [ MOVW (1, 300);
      BTRN (sl 0 0, 1);                        (* 1: misspeculates *)
      B 4;                                     (* 2: skeleton *)
      NOP;
      MOVW (0, 99) ]                           (* 4 *)
  in
  let p = program ~delta:1 insns in
  let m = { Bs_ir.Ir.funcs = []; globals = [] } in
  let r =
    Machine.run ~config:{ Machine.mode = Bitspec; fuel = 1000; fault = None; power = None;
                  engine = Machine.Classic }
      p
      (Bs_interp.Memimage.create ~size:65536 m) ~entry:"main" ~args:[]
  in
  check64 "btrn misspec" 99L r.Machine.r0

let test_call_return () =
  (* main: BL f; f: r0 := 123; return *)
  let r =
    (* 0: call 3; returns to 1; add; branch to HALT (index 5) *)
    exec [ BL 3; ALU (OpAdd, 0, 0, Imm 1); B 5; MOVW (0, 123); BX_LR ]
  in
  check64 "call+return+add" 124L r.Machine.r0

let test_counters_register_widths () =
  let r =
    exec
      [ BMOVI (sl 1 0, 1); BMOVI (sl 2 0, 2);
        BALU (BAdd, sl 3 0, sl 1 0, Sl (sl 2 0));
        MOVW (4, 7); MOV (5, 4) ]
  in
  Alcotest.(check bool) "8-bit accesses counted" true
    (r.Machine.ctr.Counters.reg_read8 >= 2
    && r.Machine.ctr.Counters.reg_write8 >= 3);
  Alcotest.(check bool) "32-bit accesses counted" true
    (r.Machine.ctr.Counters.reg_write32 >= 2)

let test_setmode_and_delta () =
  (* SETMODE/SETDELTA round-trip: switch to classic and back around a
     conventional sequence (the §3.4 pre-compiled-code protocol) *)
  let r =
    exec
      [ SETMODE Classic; MOVW (0, 5); SETMODE Bitspec; BMOVI (sl 0 1, 9);
        BEXT (Unsigned, 0, sl 0 1) ]
  in
  check64 "mode switch" 9L r.Machine.r0;
  match
    exec [ SETMODE Classic; BMOVI (sl 0 0, 1) ]
  with
  | exception Machine.Sim_trap Bs_support.Outcome.Classic_mode_slice -> ()
  | exception Machine.Sim_trap k ->
      Alcotest.failf "wrong trap kind: %s" (Bs_support.Outcome.trap_message k)
  | _ -> Alcotest.fail "slice op must trap in classic mode"

(* --- trap paths --------------------------------------------------------- *)

let test_trap_division_by_zero () =
  match exec [ MOVW (1, 9); MOVW (2, 0); DIV (Unsigned, 0, 1, 2) ] with
  | exception Machine.Sim_trap Bs_support.Outcome.Division_by_zero -> ()
  | _ -> Alcotest.fail "division by zero must trap"

let test_trap_unknown_entry () =
  let m = { Bs_ir.Ir.funcs = []; globals = [] } in
  match
    Machine.run (program [ NOP ])
      (Bs_interp.Memimage.create ~size:65536 m)
      ~entry:"nonexistent" ~args:[]
  with
  | exception Machine.Sim_trap (Bs_support.Outcome.Unknown_entry e) ->
      Alcotest.(check string) "names the entry" "nonexistent" e
  | _ -> Alcotest.fail "unknown entry must trap"

let test_trap_pc_out_of_range () =
  match exec [ B 100 ] with
  | exception Machine.Sim_trap (Bs_support.Outcome.Pc_out_of_range pc) ->
      Alcotest.(check int) "escaped pc" 100 pc
  | _ -> Alcotest.fail "PC escape must trap"

let test_fuel_exhaustion_outcome () =
  (* a tight infinite loop stops with the structured Out_of_fuel outcome —
     the same Outcome.t variant the interpreter reports — not an
     exception *)
  let r = exec ~fuel:100 [ B 0 ] in
  Alcotest.(check bool) "out of fuel" true
    (r.Machine.outcome = Bs_support.Outcome.Out_of_fuel);
  Alcotest.(check bool) "stopped at the budget" true
    (r.Machine.ctr.Counters.instrs <= 101)

let test_trap_stack_runaway () =
  (* runaway recursion: each iteration pushes SP down by 4 KiB and
     stores; SP leaves the 64 KiB image and the access faults instead of
     silently corrupting state *)
  let insns =
    [ ALU (OpSub, 13, 13, Imm 4096);   (* sp -= 4096 *)
      STR (W32, 0, 13, 0);             (* touch the frame *)
      B 0 ]
  in
  match exec insns with
  | exception Bs_interp.Memimage.Fault _ -> ()
  | _ -> Alcotest.fail "stack runaway must fault"

(* --- fault injection ---------------------------------------------------- *)

let test_injected_flip_changes_register () =
  (* flip bit 4 of r0 between the MOVW and the HALT: 0x10 XOR 42 = 58 *)
  let m = { Bs_ir.Ir.funcs = []; globals = [] } in
  let fault =
    { Machine.at_instr = 2; target = Machine.Flip_reg (0, 4) }
  in
  let r =
    Machine.run
      ~config:
        { Machine.mode = Bitspec; fuel = 1000; fault = Some fault;
          power = None; engine = Machine.Classic }
      (program [ MOVW (0, 42); NOP; NOP ])
      (Bs_interp.Memimage.create ~size:65536 m)
      ~entry:"main" ~args:[]
  in
  Alcotest.(check bool) "fault applied" true r.Machine.fault_applied;
  check64 "bit flipped" (Int64.of_int (42 lxor 16)) r.Machine.r0

let test_injected_flip_detected_by_hardware () =
  (* flip bit 7 of the slice operand before a BADD: 100+100 becomes
     228+100 > 255, the slice ALU detects the overflow and redirects into
     the handler — the misspeculation hardware catching a soft error *)
  let insns =
    [ BMOVI (sl 1 0, 100);                      (* 0 *)
      BMOVI (sl 2 0, 100);                      (* 1 *)
      BALU (BAdd, sl 3 0, sl 1 0, Sl (sl 2 0)); (* 2: overflows post-flip *)
      B 5;                                      (* 3: skeleton *)
      NOP;
      MOVW (0, 777) ]                           (* 5: handler *)
  in
  let fault =
    { Machine.at_instr = 3; target = Machine.Flip_reg (1, 7) }
  in
  let m = { Bs_ir.Ir.funcs = []; globals = [] } in
  let r =
    Machine.run
      ~config:
        { Machine.mode = Bitspec; fuel = 1000; fault = Some fault;
          power = None; engine = Machine.Classic }
      (program ~delta:1 insns)
      (Bs_interp.Memimage.create ~size:65536 m)
      ~entry:"main" ~args:[]
  in
  Alcotest.(check int) "overflow detected" 1 r.Machine.ctr.Counters.misspecs;
  check64 "handler ran" 777L r.Machine.r0

let suite =
  [ Alcotest.test_case "mov/movw/movt" `Quick test_mov_movw_movt;
    Alcotest.test_case "alu operations" `Quick test_alu;
    Alcotest.test_case "mul/div" `Quick test_mul_div;
    Alcotest.test_case "compare + cset conditions" `Quick test_cset_conditions;
    Alcotest.test_case "branches" `Quick test_branches;
    Alcotest.test_case "slices alias register bytes" `Quick
      test_slices_alias_register_bytes;
    Alcotest.test_case "slice ALU + extension" `Quick test_balu_and_bext_sign;
    Alcotest.test_case "misspeculation PC+Δ redirect" `Quick test_misspec_redirect;
    Alcotest.test_case "no misspeculation in range" `Quick test_no_misspec_in_range;
    Alcotest.test_case "memory widths + sign extension" `Quick test_memory_widths;
    Alcotest.test_case "slice-indexed addressing" `Quick test_slice_indexed_memory;
    Alcotest.test_case "speculative load misspeculates" `Quick
      test_bldrs_misspec_on_wide_value;
    Alcotest.test_case "speculative truncate" `Quick test_btrn;
    Alcotest.test_case "call/return" `Quick test_call_return;
    Alcotest.test_case "register access counters" `Quick
      test_counters_register_widths;
    Alcotest.test_case "classic mode protocol (§3.4)" `Quick test_setmode_and_delta;
    Alcotest.test_case "trap: division by zero" `Quick test_trap_division_by_zero;
    Alcotest.test_case "trap: unknown entry" `Quick test_trap_unknown_entry;
    Alcotest.test_case "trap: PC out of range" `Quick test_trap_pc_out_of_range;
    Alcotest.test_case "fuel exhaustion outcome" `Quick
      test_fuel_exhaustion_outcome;
    Alcotest.test_case "trap: stack runaway faults" `Quick
      test_trap_stack_runaway;
    Alcotest.test_case "fault injection: register flip" `Quick
      test_injected_flip_changes_register;
    Alcotest.test_case "fault injection: caught by misspec hardware" `Quick
      test_injected_flip_detected_by_hardware ]
