open Bs_support
open Bs_interp
open Bitspec

(* Checkpoint/restore and intermittent-power execution.

   Covered here:
   - Memimage snapshot/restore round-trips under random write sequences,
     exercising both the boxed [write] path and the [write_int]/[read_int]
     fast paths the simulator uses;
   - the undo journal restores exactly the state a snapshot at the last
     commit point would;
   - power traces are pure functions of (seed, distribution);
   - a checkpointed run under injected outages reproduces the fault-free
     checksum bit for bit, with restores and re-execution accounted;
   - the livelock detector: an adversarial trace that strikes a hot PC
     before every forward-progress checkpoint first degrades the policy,
     then halts with [Outcome.Livelock];
   - harvest campaigns are byte-identical at any job count. *)

(* A module with a global so the image has initialised contents. *)
let tiny_ir =
  lazy
    (match
       Driver.try_compile ~config:Driver.baseline_config
         ~source:"u32 g = 7; u32 f(u32 p) { g = g + p; return g; }"
         ~train:[ ("f", [ 1L ]) ] ()
     with
    | Ok c -> c.Driver.ir
    | Error _ -> Alcotest.fail "tiny module failed to compile")

let fresh_mem () = Memimage.create ~size:65536 (Lazy.force tiny_ir)

(* One random write, drawn from the same mix of paths the machine and
   interpreter use: boxed int64 writes and the unboxed fast path, at
   widths 8/16/32 (plus 64 for the boxed path only). *)
let random_write rng mem =
  let size = Memimage.size mem in
  let addr = Memimage.globals_base + Rng.int rng (size - Memimage.globals_base - 8) in
  match Rng.int rng 7 with
  | 0 -> Memimage.write mem ~width:8 addr (Int64.of_int (Rng.int rng 256))
  | 1 -> Memimage.write mem ~width:16 addr (Int64.of_int (Rng.int rng 65536))
  | 2 -> Memimage.write mem ~width:32 addr (Rng.next rng)
  | 3 -> Memimage.write mem ~width:64 addr (Rng.next rng)
  | 4 -> Memimage.write_int mem ~width:8 addr (Rng.int rng 256)
  | 5 -> Memimage.write_int mem ~width:16 addr (Rng.int rng 65536)
  | _ -> Memimage.write_int mem ~width:32 addr (Rng.int rng 0x3FFFFFFF)

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot/restore round-trips random writes"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let mem = fresh_mem () in
      for _ = 1 to 50 do random_write rng mem done;
      let s = Memimage.snapshot mem in
      (* probe a few addresses through both read paths before clobbering *)
      let probes =
        List.init 8 (fun _ ->
            let a =
              Memimage.globals_base
              + Rng.int rng (Memimage.size mem - Memimage.globals_base - 8)
            in
            (a, Memimage.read mem ~width:32 a, Memimage.read_int mem ~width:16 a))
      in
      for _ = 1 to 50 do random_write rng mem done;
      Memimage.restore mem s;
      List.for_all
        (fun (a, v32, v16) ->
          Memimage.read mem ~width:32 a = v32
          && Memimage.read_int mem ~width:16 a = v16)
        probes
      && Memimage.snapshot_equal s (Memimage.snapshot mem))

let prop_journal_undo =
  QCheck.Test.make ~name:"journal undo restores the last commit point"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int (seed + 2)) in
      let mem = fresh_mem () in
      for _ = 1 to 30 do random_write rng mem done;
      Memimage.journal_start mem;
      for _ = 1 to 30 do random_write rng mem done;
      Memimage.journal_commit mem;
      let at_commit = Memimage.snapshot mem in
      for _ = 1 to 40 do random_write rng mem done;
      let dirty = Memimage.journal_pending mem in
      Memimage.journal_undo mem;
      Memimage.journal_stop mem;
      dirty > 0 && Memimage.snapshot_equal at_commit (Memimage.snapshot mem))

(* write_int and write must agree through both read paths *)
let test_fast_path_agreement () =
  let mem = fresh_mem () in
  let a = Memimage.globals_base + 64 in
  List.iter
    (fun w ->
      let v = 0x12345678 land ((1 lsl w) - 1) in
      Memimage.write_int mem ~width:w a v;
      Alcotest.(check int64)
        (Printf.sprintf "write_int/read w=%d" w)
        (Int64.of_int v) (Memimage.read mem ~width:w a);
      Memimage.write mem ~width:w (a + 16) (Int64.of_int v);
      Alcotest.(check int)
        (Printf.sprintf "write/read_int w=%d" w)
        v
        (Memimage.read_int mem ~width:w (a + 16)))
    [ 8; 16; 32 ]

(* --- power traces ------------------------------------------------------- *)

let trace_fires dist ~seed =
  let t = Bs_sim.Powertrace.create ~seed ~hot_pcs:[ 3; 7; 11 ] dist in
  List.init 3000 (fun i ->
      Bs_sim.Powertrace.fires t ~instrs:(i + 1) ~pc:((i * 5) mod 13))

let test_trace_determinism () =
  List.iter
    (fun dist ->
      let name = Bs_sim.Powertrace.dist_to_string dist in
      let a = trace_fires dist ~seed:9L and b = trace_fires dist ~seed:9L in
      Alcotest.(check (list bool)) (name ^ ": same seed, same trace") a b;
      Alcotest.(check bool) (name ^ ": fires at least once") true
        (List.mem true a))
    [ Bs_sim.Powertrace.Periodic 37;
      Bs_sim.Powertrace.Exponential 41.0;
      Bs_sim.Powertrace.Adversarial { every = 23 } ]

let test_dist_strings () =
  List.iter
    (fun s ->
      match Bs_sim.Powertrace.dist_of_string s with
      | None -> Alcotest.failf "%s did not parse" s
      | Some d ->
          Alcotest.(check string) s s (Bs_sim.Powertrace.dist_to_string d))
    [ "periodic:500"; "exp:2000"; "hotpc:40" ];
  Alcotest.(check bool) "garbage rejected" true
    (Bs_sim.Powertrace.dist_of_string "periodic:-1" = None
    && Bs_sim.Powertrace.dist_of_string "nope:3" = None)

(* --- checkpointed execution -------------------------------------------- *)

let loop_source =
  "u32 acc = 0;\n\
   u32 f(u32 n) {\n\
  \  u8 s = 1;\n\
  \  u32 i = 0;\n\
  \  while (i < n) {\n\
  \    u8 x = i & 15;\n\
  \    s = (s + x) & 255;\n\
  \    acc = acc + s;\n\
  \    i = i + 1;\n\
  \  }\n\
  \  return acc + s;\n\
   }\n"

let compile_loop () =
  match
    Driver.try_compile ~config:Driver.bitspec_config ~source:loop_source
      ~train:[ ("f", [ 200L ]) ] ()
  with
  | Ok c -> c
  | Error _ -> Alcotest.fail "loop source failed to compile"

let hot_pcs_of (c : Driver.compiled) =
  let acc = ref [] in
  Array.iteri
    (fun pc s -> if s <> None then acc := pc :: !acc)
    c.Driver.program.Bs_backend.Asm.srcmap;
  List.rev !acc

let power_of c ~dist ~seed ~policy ~retries =
  { Bs_sim.Machine.trace =
      Bs_sim.Powertrace.create ~seed ~hot_pcs:(hot_pcs_of c) dist;
    policy;
    max_retries = retries }

let test_power_run_correct () =
  let c = compile_loop () in
  let golden = Driver.run_machine c ~entry:"f" ~args:[ 200L ] in
  Alcotest.(check bool) "fault-free run finishes" true
    (golden.Bs_sim.Machine.outcome = Outcome.Finished);
  let pw =
    power_of c ~dist:(Bs_sim.Powertrace.Periodic 131) ~seed:5L
      ~policy:(Bs_sim.Checkpoint.Interval 97) ~retries:8
  in
  let r = Driver.run_machine ~power:pw c ~entry:"f" ~args:[ 200L ] in
  let ctr = r.Bs_sim.Machine.ctr in
  Alcotest.(check bool) "finishes through outages" true
    (r.Bs_sim.Machine.outcome = Outcome.Finished);
  Alcotest.(check int64) "checksum matches the fault-free run"
    golden.Bs_sim.Machine.r0 r.Bs_sim.Machine.r0;
  Alcotest.(check bool) "outages actually struck" true
    (ctr.Bs_sim.Counters.restores > 0);
  Alcotest.(check bool) "re-execution accounted" true
    (ctr.Bs_sim.Counters.reexec_instrs > 0);
  Alcotest.(check bool) "checkpoints flushed bytes" true
    (ctr.Bs_sim.Counters.checkpoint_bytes > 0);
  (* wasted work is bounded by the total instruction count *)
  Alcotest.(check bool) "reexec < instrs" true
    (ctr.Bs_sim.Counters.reexec_instrs < ctr.Bs_sim.Counters.instrs)

(* Same trace seed, same policy: checkpointed runs are deterministic. *)
let test_power_run_deterministic () =
  let c = compile_loop () in
  let run () =
    let pw =
      power_of c ~dist:(Bs_sim.Powertrace.Adversarial { every = 40 }) ~seed:7L
        ~policy:(Bs_sim.Checkpoint.Interval 500) ~retries:8
    in
    let r = Driver.run_machine ~power:pw c ~entry:"f" ~args:[ 200L ] in
    ( r.Bs_sim.Machine.r0,
      r.Bs_sim.Machine.ctr.Bs_sim.Counters.restores,
      r.Bs_sim.Machine.ctr.Bs_sim.Counters.reexec_instrs )
  in
  let r0, restores, reexec = run () in
  let r0', restores', reexec' = run () in
  Alcotest.(check int64) "checksum" r0 r0';
  Alcotest.(check int) "restores" restores restores';
  Alcotest.(check int) "reexec" reexec reexec'

(* A store-free speculative loop under an adversarial trace that strikes
   a hot PC before any checkpoint can capture forward progress: the
   detector must degrade once, then give up with [Livelock] instead of
   burning the whole fuel budget re-executing the same window. *)
let livelock_source =
  "u32 f(u32 n) {\n\
  \  u8 s = 1;\n\
  \  u32 i = 0;\n\
  \  while (i < n) {\n\
  \    u8 x = i & 15;\n\
  \    s = (s + x) & 255;\n\
  \    i = i + 1;\n\
  \  }\n\
  \  return s;\n\
   }\n"

let test_livelock_detected () =
  let c =
    match
      Driver.try_compile ~config:Driver.bitspec_config ~source:livelock_source
        ~train:[ ("f", [ 200L ]) ] ()
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "livelock source failed to compile"
  in
  Alcotest.(check bool) "program has speculative hot pcs" true
    (hot_pcs_of c <> []);
  let pw =
    power_of c ~dist:(Bs_sim.Powertrace.Adversarial { every = 40 }) ~seed:7L
      ~policy:(Bs_sim.Checkpoint.Interval 100000) ~retries:3
  in
  let r = Driver.run_machine ~power:pw c ~entry:"f" ~args:[ 200L ] in
  let ctr = r.Bs_sim.Machine.ctr in
  Alcotest.(check bool) "outcome is Livelock" true
    (r.Bs_sim.Machine.outcome = Outcome.Livelock);
  Alcotest.(check int) "degraded exactly once" 1
    ctr.Bs_sim.Counters.livelock_degrades;
  Alcotest.(check bool) "gave up past the retry budget" true
    (ctr.Bs_sim.Counters.restores > 3);
  (* the whole point: orders of magnitude below the fuel budget *)
  Alcotest.(check bool) "halted early" true
    (ctr.Bs_sim.Counters.instrs < 1_000_000)

(* --- harvest campaigns -------------------------------------------------- *)

let test_harvest_jobs_deterministic () =
  let run jobs =
    Campaign.run_power ~jobs ~policy:(Bs_sim.Checkpoint.Interval 500)
      ~retries:8
      ~dist:(Bs_sim.Powertrace.Exponential 2000.0)
      ~trials:6 ~seed:3L
      (Bs_workloads.Registry.find "bitcount")
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check string) "harvest reports identical at jobs 1 vs 4"
    (Campaign.power_report a) (Campaign.power_report b);
  Alcotest.(check (list string)) "per-trial buckets identical"
    (List.map (fun t -> Campaign.power_bucket t.Campaign.pt_verdict) a.Campaign.p_trials)
    (List.map (fun t -> Campaign.power_bucket t.Campaign.pt_verdict) b.Campaign.p_trials);
  (* every trial classifies into exactly one bucket, and correct trials
     reproduce the fault-free checksum *)
  List.iter
    (fun (t : Campaign.power_trial) ->
      match t.Campaign.pt_verdict with
      | Campaign.P_restored n ->
          Alcotest.(check bool) "restored trial has restores" true
            (n > 0 && t.Campaign.pt_restores = n)
      | Campaign.P_completed ->
          Alcotest.(check int) "completed trial has no restores" 0
            t.Campaign.pt_restores
      | _ -> ())
    a.Campaign.p_trials

let suite =
  [ QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
    QCheck_alcotest.to_alcotest prop_journal_undo;
    Alcotest.test_case "write_int/read_int fast paths agree" `Quick
      test_fast_path_agreement;
    Alcotest.test_case "power traces are seed-deterministic" `Quick
      test_trace_determinism;
    Alcotest.test_case "distribution strings round-trip" `Quick
      test_dist_strings;
    Alcotest.test_case "checkpointed run reproduces the checksum" `Quick
      test_power_run_correct;
    Alcotest.test_case "checkpointed runs are deterministic" `Quick
      test_power_run_deterministic;
    Alcotest.test_case "adversarial livelock is detected" `Quick
      test_livelock_detected;
    Alcotest.test_case "harvest campaigns are jobs-deterministic" `Quick
      test_harvest_jobs_deterministic ]
