open Bitspec
open Bs_support
module M = Bs_obs.Metrics

(* Tests for the metrics registry: quantile estimates stay within one
   bucket ratio of the exact rank statistic for arbitrary observation
   sequences, counters are exact under a multi-domain increment hammer,
   the snapshot serialisation is deterministic (sorted, byte-identical
   across identical runs, independent of registration order), and a
   server round trip reports exactly the requests that were issued. *)

(* --- quantile bucket bound (qcheck) ------------------------------------ *)

(* Exact rank statistic, same definition the estimator targets: the
   ceil(q*n)-th smallest observation (1-based, clamped to [1, n]). *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  sorted.(rank - 1)

let prop_quantile_bounds =
  QCheck.Test.make
    ~name:"histogram quantiles are within one bucket of exact" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 300) (float_range 0.0 100_000.0))
    (fun vals ->
      M.reset ();
      let h = M.histogram "test_quantile_ms" in
      List.iter (M.observe h) vals;
      let sorted = Array.of_list vals in
      Array.sort compare sorted;
      let n = List.length vals in
      if M.histogram_count h <> n then
        QCheck.Test.fail_reportf "count %d <> %d" (M.histogram_count h) n;
      List.iter
        (fun q ->
          let exact = exact_quantile sorted q in
          let est = M.quantile h q in
          (* never below the true quantile... *)
          if est +. 1e-9 < exact then
            QCheck.Test.fail_reportf "p%.0f estimate %g below exact %g"
              (q *. 100.) est exact;
          (* ...and at most one bucket ratio above it (or the first
             bucket's upper bound, for values under the floor) *)
          let ceiling = Float.max (exact *. M.bucket_ratio) M.bucket_floor in
          if est > ceiling +. (1e-9 *. Float.max 1.0 exact) then
            QCheck.Test.fail_reportf "p%.0f estimate %g above bound %g"
              (q *. 100.) est ceiling)
        [ 0.5; 0.9; 0.99 ];
      true)

(* --- concurrent exactness ---------------------------------------------- *)

let test_concurrent_exactness () =
  M.reset ();
  let c = M.counter "test_hammer_total" in
  let g = M.gauge "test_hammer_gauge" in
  let h = M.histogram "test_hammer_ms" in
  let per_domain () =
    for _ = 1 to 50_000 do M.inc c done;
    for _ = 1 to 10_000 do M.inc ~by:3 c done;
    for _ = 1 to 25_000 do M.add_gauge g 1.0 done;
    for i = 1 to 10_000 do M.observe h (float_of_int (i mod 7)) done
  in
  let ds = Array.init 4 (fun _ -> Domain.spawn per_domain) in
  Array.iter Domain.join ds;
  Alcotest.(check int) "counter exact under 4 domains"
    (4 * (50_000 + (3 * 10_000)))
    (M.counter_value c);
  Alcotest.(check (float 0.0)) "gauge adds exact" 100_000.0 (M.gauge_value g);
  Alcotest.(check int) "histogram count exact" 40_000 (M.histogram_count h)

(* --- deterministic snapshot serialisation ------------------------------ *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* One fixed unit of work against the registry.  [order] swaps the
   registration order of two fresh names to show the snapshot does not
   depend on it (the output is sorted by name). *)
let snapshot_run order =
  M.reset ();
  let names =
    if order then [ "zz_det_test"; "aa_det_test" ]
    else [ "aa_det_test"; "zz_det_test" ]
  in
  let cs = List.map (fun n -> M.counter n ~labels:[ ("k", "v") ]) names in
  List.iteri (fun i c -> M.inc ~by:(i + 7) c) (List.sort compare cs);
  M.set_gauge (M.gauge "det_test_gauge") 2.5;
  let h = M.histogram "det_test_ms" in
  List.iter (M.observe h) [ 0.4; 1.7; 12.0; 12.0; 250.0 ];
  Jsonx.to_string (M.snapshot_json ())

let test_snapshot_deterministic () =
  let a = snapshot_run false in
  let b = snapshot_run true in
  Alcotest.(check string) "identical runs serialise byte-identically" a b;
  match (find_sub a "aa_det_test", find_sub a "zz_det_test") with
  | Some ia, Some iz ->
      Alcotest.(check bool) "entries sorted by name" true (ia < iz)
  | _ -> Alcotest.fail "registered test counters missing from snapshot"

(* --- serve round trip: stats counters == issued requests --------------- *)

let bench_crc =
  { Service.b_workload = "CRC32"; b_arch = Driver.Bitspec_arch;
    b_heuristic = Bs_interp.Profile.Hmax; b_no_expander = false }

let rq id op =
  { Service.rq_id = id; rq_op = op; rq_deadline_ms = None; rq_fuel = None;
    rq_chaos = None }

(* Sum of a named counter across all its label sets in a snapshot. *)
let counter_total snapshot name =
  match Option.bind (Jsonx.member "counters" snapshot) Jsonx.get_list with
  | None -> Alcotest.fail "snapshot has no counters section"
  | Some cells ->
      List.fold_left
        (fun acc cell ->
          if Jsonx.mem_string "name" cell = Some name then
            acc + Option.value ~default:0 (Jsonx.mem_int "value" cell)
          else acc)
        0 cells

let histogram_count_of snapshot name =
  match Option.bind (Jsonx.member "histograms" snapshot) Jsonx.get_list with
  | None -> Alcotest.fail "snapshot has no histograms section"
  | Some cells -> (
      let hit =
        List.find_opt
          (fun cell ->
            Jsonx.mem_string "name" cell = Some name
            && Jsonx.mem_string "labels" cell = Some "")
          cells
      in
      match hit with
      | None -> Alcotest.fail (name ^ " histogram missing from snapshot")
      | Some cell -> Option.value ~default:(-1) (Jsonx.mem_int "count" cell))

let test_serve_stats_counts () =
  M.reset ();
  Compile_cache.reset ();
  let cfg =
    { Server.default_config with
      Server.jobs = 2; backoff_base_ms = 1.0; backoff_cap_ms = 4.0 }
  in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      (match (Server.submit_wait t (rq 1 Service.Ping)).Service.rs_status with
      | Service.Pong -> ()
      | s -> Alcotest.fail ("ping answered " ^ Service.status_name s));
      let n_bench = 6 in
      for i = 1 to n_bench do
        match
          (Server.submit_wait t (rq (i + 1) (Service.Bench bench_crc)))
            .Service.rs_status
        with
        | Service.Done _ -> ()
        | s ->
            Alcotest.fail
              (Printf.sprintf "bench %d answered %s" i (Service.status_name s))
      done;
      let hr = Server.health t in
      Alcotest.(check bool) "healthy after clean run" true
        hr.Service.hr_ok;
      let st = Server.stats t in
      (* st_served covers every answered request, the ping included;
         the metric counters below cover bench requests only *)
      Alcotest.(check int) "server counted every answered request"
        (n_bench + 1) st.Service.st_served;
      let snap = st.Service.st_metrics in
      Alcotest.(check int) "outcome counters sum to issued bench requests"
        n_bench
        (counter_total snap "serve_requests_total");
      Alcotest.(check int) "every bench request was admitted" n_bench
        (counter_total snap "serve_accepted_total");
      Alcotest.(check int) "latency histogram saw every bench request"
        n_bench
        (histogram_count_of snap "serve_request_ms"))

let suite =
  [ QCheck_alcotest.to_alcotest prop_quantile_bounds;
    Alcotest.test_case "counters are exact under a 4-domain hammer" `Quick
      test_concurrent_exactness;
    Alcotest.test_case "snapshot serialisation is deterministic" `Quick
      test_snapshot_deterministic;
    Alcotest.test_case "serve round trip: stats match issued requests" `Slow
      test_serve_stats_counts ]
