open Bitspec
open Bs_workloads

(* Tests for the parallel evaluation engine: the domain pool's ordering
   and failure semantics, the single-flight memo table, the
   content-addressed compile cache, and the byte-identity of parallel
   campaigns with their sequential runs. *)

let test_pool_order () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Array.map f input in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        seq
        (Bs_exec.Pool.map ~jobs f input))
    [ 1; 2; 4; 7 ];
  Alcotest.(check (list int)) "map_list preserves order"
    (List.init 25 f)
    (Bs_exec.Pool.map_list ~jobs:4 f (List.init 25 (fun i -> i)))

exception Boom of int

let test_pool_exception () =
  (* the lowest-index failure must win, whatever the schedule *)
  let f x = if x = 10 || x = 20 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Bs_exec.Pool.map ~jobs f (Array.init 64 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d rethrows lowest index" jobs)
            10 n)
    [ 1; 4 ]

let test_pool_run_all () =
  let hit = Array.make 50 false in
  Bs_exec.Pool.run_all ~jobs:4
    (Array.init 50 (fun i () -> hit.(i) <- true));
  Alcotest.(check bool) "every thunk ran" true (Array.for_all Fun.id hit)

let test_memo_single_flight () =
  let m : (int, int) Bs_exec.Memo.t = Bs_exec.Memo.create () in
  let computed = Atomic.make 0 in
  let get () =
    Bs_exec.Memo.find_or_add m 7 (fun () ->
        Atomic.incr computed;
        42)
  in
  (* hammer the same key from several domains: one computation, shared *)
  let vs = Bs_exec.Pool.map ~jobs:4 (fun _ -> get ()) (Array.make 16 ()) in
  Alcotest.(check bool) "all callers see the value" true
    (Array.for_all (fun v -> v = 42) vs);
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get computed);
  Alcotest.(check int) "one miss" 1 (Bs_exec.Memo.misses m);
  Alcotest.(check int) "the rest were hits" 15 (Bs_exec.Memo.hits m)

let test_memo_failure_memoised () =
  (* a deterministic failure is re-executed [max_failures] times, then
     pinned: later requests rethrow without running the thunk again *)
  let m : (string, int) Bs_exec.Memo.t =
    Bs_exec.Memo.create ~max_failures:3 ()
  in
  let runs = ref 0 in
  let get () =
    Bs_exec.Memo.find_or_add m "k" (fun () ->
        incr runs;
        failwith "deterministic failure")
  in
  for _ = 1 to 6 do
    match get () with
    | _ -> Alcotest.fail "expected failure"
    | exception Failure _ -> ()
  done;
  Alcotest.(check int) "ran max_failures times, then pinned" 3 !runs;
  Alcotest.(check int) "failure attempts recorded" 3
    (Bs_exec.Memo.failure_attempts m "k");
  Alcotest.(check bool) "failed key is memoised" true
    (Bs_exec.Memo.mem m "k")

let test_memo_transient_failure_heals () =
  (* satellite 1: a transiently-failing key must not be poisoned — the
     retry after the failure succeeds and the success is memoised *)
  let m : (string, int) Bs_exec.Memo.t = Bs_exec.Memo.create () in
  let runs = ref 0 in
  let get () =
    Bs_exec.Memo.find_or_add m "k" (fun () ->
        incr runs;
        if !runs = 1 then failwith "transient" else 42)
  in
  (match get () with
  | _ -> Alcotest.fail "expected first-run failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "second request heals" 42 (get ());
  Alcotest.(check int) "third request is a hit" 42 (get ());
  Alcotest.(check int) "thunk ran twice" 2 !runs;
  Alcotest.(check int) "healed key records no failure" 0
    (Bs_exec.Memo.failure_attempts m "k")

let test_pool_cancellation () =
  (* satellite 2: should_stop is polled between items; a cancelled map
     raises Cancelled after draining, and stops claiming new items *)
  List.iter
    (fun jobs ->
      let ran = Atomic.make 0 in
      let stop = Atomic.make false in
      let f i =
        Atomic.incr ran;
        if i = 5 then Atomic.set stop true;
        i
      in
      match
        Bs_exec.Pool.map ~jobs
          ~should_stop:(fun () -> Atomic.get stop)
          f
          (Array.init 512 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Cancelled"
      | exception Bs_exec.Pool.Cancelled ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d stopped early" jobs)
            true
            (Atomic.get ran < 512))
    [ 1; 4 ];
  (* an item failure outranks cancellation: the exception wins *)
  let stop = Atomic.make false in
  (match
     Bs_exec.Pool.map ~jobs:4
       ~should_stop:(fun () -> Atomic.get stop)
       (fun i ->
         if i = 3 then begin
           Atomic.set stop true;
           raise (Boom 3)
         end;
         i)
       (Array.init 64 (fun i -> i))
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> Alcotest.(check int) "failure wins" 3 n);
  (* never-stopping should_stop changes nothing *)
  Alcotest.(check (array int)) "no-op should_stop"
    (Array.init 20 succ)
    (Bs_exec.Pool.map ~jobs:4 ~should_stop:(fun () -> false) succ
       (Array.init 20 (fun i -> i)))

let test_compile_cache_hits () =
  (* every Experiment compile goes through the content-addressed cache:
     a second identical run must not compile again *)
  Compile_cache.reset ();
  let w = Registry.find "CRC32" in
  let m1 = Experiment.run Driver.baseline_config w in
  let after_first = Compile_cache.misses () in
  let m2 = Experiment.run Driver.baseline_config w in
  Alcotest.(check bool) "at least one real compile" true (after_first >= 1);
  Alcotest.(check int) "second run compiles nothing"
    after_first (Compile_cache.misses ());
  Alcotest.(check bool) "second run hits the cache" true
    (Compile_cache.hits () >= after_first);
  Alcotest.(check int64) "cached compile, same checksum"
    m1.Experiment.checksum m2.Experiment.checksum

let test_campaign_jobs_identical () =
  let w = Registry.find "CRC32" in
  let report jobs =
    Campaign.report ~max_examples:4
      (Campaign.run ~jobs ~trials:12 ~seed:9L w)
  in
  Alcotest.(check string) "inject: jobs=4 == jobs=1" (report 1) (report 4)

let test_fuzz_jobs_identical () =
  let report jobs =
    Bs_fuzz.Fuzz.report
      (Bs_fuzz.Fuzz.run ~reduce:false ~size:6 ~jobs ~seed:5 ~trials:12 ())
  in
  Alcotest.(check string) "fuzz: jobs=4 == jobs=1" (report 1) (report 4)

let suite =
  [ Alcotest.test_case "pool preserves order" `Quick test_pool_order;
    Alcotest.test_case "pool rethrows deterministically" `Quick
      test_pool_exception;
    Alcotest.test_case "run_all covers every thunk" `Quick test_pool_run_all;
    Alcotest.test_case "memo is single-flight" `Quick test_memo_single_flight;
    Alcotest.test_case "memo caches failures boundedly" `Quick
      test_memo_failure_memoised;
    Alcotest.test_case "memo heals transient failures" `Quick
      test_memo_transient_failure_heals;
    Alcotest.test_case "pool cancellation is cooperative" `Quick
      test_pool_cancellation;
    Alcotest.test_case "compile cache serves repeat compiles" `Quick
      test_compile_cache_hits;
    Alcotest.test_case "parallel inject is byte-identical" `Slow
      test_campaign_jobs_identical;
    Alcotest.test_case "parallel fuzz is byte-identical" `Slow
      test_fuzz_jobs_identical ]
