open Bs_isa
open Bs_sim

(* ISA-level tests: encoder/decoder round-trips (including a random
   instruction generator), cache model behaviour, classic mode, and the
   DTS voltage solver. *)

let slice r b = { Isa.sl_reg = r; sl_byte = b }

let sample_insns : Isa.insn list =
  [ MOV (1, 2); MOVW (3, 0xBEEF); MOVT (4, 0x1234);
    ALU (OpAdd, 1, 2, Reg 3); ALU (OpSub, 5, 6, Imm 4095);
    ALU (OpLsl, 7, 8, Imm 13); MUL (1, 2, 3); DIV (Unsigned, 1, 2, 3);
    DIV (Signed, 4, 5, 6); CMP (7, Reg 8); CMP (9, Imm 100000);
    CSET (CUlt, 2); B 123456; BC (CSge, 999); BL 42; BX_LR;
    LDR (W8, Unsigned, 1, 2, 100); LDR (W16, Signed, 3, 4, 0);
    LDR (W32, Unsigned, 5, 13, 8192); STR (W8, 1, 2, 3);
    STR (W32, 4, 13, 16); SXT (W8, 1, 2); UXT (W16, 3, 4);
    BALU (BAdd, slice 1 0, slice 2 3, Sl (slice 3 1));
    BALU (BSub, slice 4 2, slice 5 0, BImm 15);
    BALU (BAnd, slice 0 0, slice 0 1, Sl (slice 0 2));
    BCMPS (slice 1 1, BImm 255); BCMPS (slice 2 2, Sl (slice 3 3));
    BLDRS (slice 1 0, 2, BOff 255); BLDRS (slice 1 0, 2, BIdx (slice 4 1));
    BLDRB (slice 5 2, 6, BOff 0); BLDRB (slice 5 2, 6, BIdx (slice 7 3));
    BSTRB (slice 8 1, 9, BOff 10); BSTRB (slice 8 1, 9, BIdx (slice 10 0));
    BEXT (Unsigned, 1, slice 2 2); BEXT (Signed, 3, slice 4 0);
    BTRN (slice 5 1, 6); BMOV (slice 1 0, slice 2 3); BMOVI (slice 3 2, 200);
    SETDELTA 4000; SETMODE Classic; SETMODE Bitspec; NOP; HALT ]

let test_roundtrip_samples () =
  List.iter
    (fun i ->
      let w = Encode.encode i in
      let i' = Encode.decode w in
      Alcotest.(check string) "roundtrip" (Isa.to_string i) (Isa.to_string i'))
    sample_insns

let gen_insn =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let sl = map2 (fun r b -> slice r b) reg (int_bound 3) in
  let cond =
    oneofl
      [ Isa.CEq; CNe; CUlt; CUle; CUgt; CUge; CSlt; CSle; CSgt; CSge ]
  in
  let aluop =
    oneofl [ Isa.OpAdd; OpSub; OpAnd; OpOrr; OpEor; OpLsl; OpLsr; OpAsr ]
  in
  let baluop = oneofl [ Isa.BAdd; BSub; BAnd; BOrr; BEor ] in
  let width = oneofl [ Isa.W8; W16; W32 ] in
  let sign = oneofl [ Isa.Signed; Isa.Unsigned ] in
  oneof
    [ map2 (fun a b -> Isa.MOV (a, b)) reg reg;
      map2 (fun a v -> Isa.MOVW (a, v)) reg (int_bound 0xFFFF);
      (let* op = aluop and* d = reg and* n = reg and* m = reg in
       return (Isa.ALU (op, d, n, Reg m)));
      (let* op = aluop and* d = reg and* n = reg and* v = int_bound 0x7FFF in
       return (Isa.ALU (op, d, n, Imm v)));
      (let* w = width and* s = sign and* d = reg and* n = reg
       and* off = int_bound 0x3FFF in
       return (Isa.LDR (w, s, d, n, off)));
      (let* op = baluop and* d = sl and* n = sl and* m = sl in
       return (Isa.BALU (op, d, n, Sl m)));
      (let* op = baluop and* d = sl and* n = sl and* v = int_bound 15 in
       return (Isa.BALU (op, d, n, BImm v)));
      (let* d = sl and* n = reg and* off = int_bound 255 in
       return (Isa.BLDRS (d, n, BOff off)));
      (let* d = sl and* n = reg and* x = sl in
       return (Isa.BLDRB (d, n, BIdx x)));
      (let* d = sl and* n = reg and* x = sl in
       return (Isa.BSTRB (d, n, BIdx x)));
      (let* s = sign and* d = reg and* x = sl in
       return (Isa.BEXT (s, d, x)));
      map2 (fun d s -> Isa.BTRN (d, s)) sl reg;
      map2 (fun d s -> Isa.BMOV (d, s)) sl sl;
      map2 (fun d v -> Isa.BMOVI (d, v)) sl (int_bound 255);
      map (fun t -> Isa.B t) (int_bound 0xFFFFF);
      map2 (fun c t -> Isa.BC (c, t)) cond (int_bound 0xFFFFF);
      map (fun v -> Isa.SETDELTA v) (int_bound 0xFFFF) ]

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip (random)" ~count:500
    (QCheck.make gen_insn)
    (fun i -> Isa.to_string (Encode.decode (Encode.encode i)) = Isa.to_string i)

(* --- cache model -------------------------------------------------------- *)

let test_cache_basics () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:2 ~line_bytes:32 in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Cache.access c 4);
  Alcotest.(check bool) "same line hits again" true (Cache.access c 31);
  Alcotest.(check bool) "next line misses" false (Cache.access c 32);
  Alcotest.(check int) "counted" 2 c.Cache.misses

let test_cache_lru () =
  (* 2-way set: three conflicting lines evict the least recently used *)
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:2 ~line_bytes:32 in
  let sets = c.Cache.sets in
  let a = 0 and b = sets * 32 and d = 2 * sets * 32 in
  ignore (Cache.access c a);
  ignore (Cache.access c b);
  ignore (Cache.access c a); (* a is MRU *)
  ignore (Cache.access c d); (* evicts b *)
  Alcotest.(check bool) "a survives" true (Cache.access c a);
  Alcotest.(check bool) "b evicted" false (Cache.access c b)

let test_cache_reset () =
  let c = Cache.l1d () in
  ignore (Cache.access c 64);
  Cache.reset c;
  Alcotest.(check int) "stats cleared" 0 (Cache.accesses c);
  Alcotest.(check bool) "cold again" false (Cache.access c 64)

(* --- classic mode ------------------------------------------------------- *)

let test_classic_mode_traps () =
  let w = Bs_workloads.Registry.find "bitcount" in
  let c = Bitspec.Experiment.compile_workload Bitspec.Driver.bitspec_config w in
  (* running a squeezed binary with the slice extension disabled traps *)
  match
    Bs_sim.Machine.run
      ~config:{ Bs_sim.Machine.mode = Isa.Classic; fuel = 10_000_000;
                fault = None; power = None; engine = Bs_sim.Machine.Jit }
      c.Bitspec.Driver.program
      (Bs_interp.Memimage.create c.Bitspec.Driver.ir)
      ~entry:w.Bs_workloads.Workload.entry ~args:[ 10L ]
  with
  | exception Bs_sim.Machine.Sim_trap k ->
      Alcotest.(check bool) "classic-mode slice trap" true
        (k = Bs_support.Outcome.Classic_mode_slice)
  | _ -> Alcotest.fail "classic mode executed slice instructions"

(* --- DTS model ---------------------------------------------------------- *)

let test_dts_solver () =
  (* no slack -> nominal voltage -> factor ~1 *)
  let f1 = Bs_energy.Dts.energy_factor 1.0 in
  Alcotest.(check bool) "no slack ~ 1" true (f1 > 0.95 && f1 <= 1.0001);
  (* more slack -> lower energy *)
  let f2 = Bs_energy.Dts.energy_factor 0.8 in
  let f3 = Bs_energy.Dts.energy_factor 0.5 in
  Alcotest.(check bool) "monotone" true (f3 < f2 && f2 < f1);
  Alcotest.(check bool) "bounded below" true (f3 > 0.1)

let prop_dts_monotone =
  QCheck.Test.make ~name:"DTS energy factor monotone in slack" ~count:100
    QCheck.(pair (float_range 0.3 1.0) (float_range 0.3 1.0))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Bs_energy.Dts.energy_factor lo <= Bs_energy.Dts.energy_factor hi +. 1e-9)

let test_thumb_cost_model () =
  (* 2-address penalty and immediate limits *)
  Alcotest.(check int) "same-dest alu" 1
    (Bs_backend.Thumb.cost (ALU (OpAdd, 1, 1, Reg 2)));
  Alcotest.(check int) "3-address alu" 2
    (Bs_backend.Thumb.cost (ALU (OpAdd, 1, 2, Reg 3)));
  Alcotest.(check int) "big immediate" 4
    (Bs_backend.Thumb.cost (ALU (OpAdd, 1, 2, Imm 4096)));
  Alcotest.(check int) "high register" 3
    (Bs_backend.Thumb.cost (MOV (11, 12)));
  Alcotest.(check int) "cset" 3 (Bs_backend.Thumb.cost (CSET (CEq, 1)))

let suite =
  [ Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_samples;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "cache basics" `Quick test_cache_basics;
    Alcotest.test_case "cache LRU" `Quick test_cache_lru;
    Alcotest.test_case "cache reset" `Quick test_cache_reset;
    Alcotest.test_case "classic mode traps on slices" `Quick
      test_classic_mode_traps;
    Alcotest.test_case "DTS voltage solver" `Quick test_dts_solver;
    QCheck_alcotest.to_alcotest prop_dts_monotone;
    Alcotest.test_case "thumb cost model" `Quick test_thumb_cost_model ]
