open Bitspec
open Bs_support

(* Tests for the compile service stack: the JSON codec, deterministic
   backoff, the crash-safe disk cache (corruption -> quarantine, tmp
   sweep, reopen), the persistent compile cache, and the server engine's
   supervision behaviours — retry-on-transient, structured failure after
   exhaustion, watchdog timeouts for wedged workers, load shedding, and
   the jobs-independence of the canonical log. *)

let with_tmpdir f =
  let dir =
    Filename.temp_file "bs-serve-test" ""
  in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* --- jsonx ------------------------------------------------------------- *)

let test_jsonx_roundtrip () =
  let j =
    Jsonx.Obj
      [ ("s", Jsonx.Str "a\"b\\c\nd\teof");
        ("n", Jsonx.Num 2.5);
        ("i", Jsonx.int (-42));
        ("b", Jsonx.Bool true);
        ("z", Jsonx.Null);
        ("l", Jsonx.Arr [ Jsonx.int 1; Jsonx.Str "x"; Jsonx.Bool false ]) ]
  in
  match Jsonx.parse (Jsonx.to_string j) with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok j' ->
      Alcotest.(check string) "roundtrip" (Jsonx.to_string j)
        (Jsonx.to_string j');
      Alcotest.(check (option string)) "member access" (Some "a\"b\\c\nd\teof")
        (Jsonx.mem_string "s" j');
      Alcotest.(check (option int)) "int access" (Some (-42))
        (Jsonx.mem_int "i" j')

let test_jsonx_errors () =
  let bad s =
    match Jsonx.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
  in
  bad "";
  bad "{";
  bad "{\"a\":}";
  bad "[1,]";
  bad "\"unterminated";
  bad "{\"a\":1} trailing";
  (* the depth bound refuses a pathological nest instead of overflowing *)
  bad (String.concat "" (List.init 200 (fun _ -> "[")))

(* --- protocol codec ---------------------------------------------------- *)

let test_protocol_roundtrip () =
  let rq =
    { Service.rq_id = 12;
      rq_op =
        Service.Bench
          { Service.b_workload = "CRC32"; b_arch = Driver.Bitspec_arch;
            b_heuristic = Bs_interp.Profile.Havg; b_no_expander = true };
      rq_deadline_ms = Some 250; rq_fuel = Some 1_000_000;
      rq_chaos = Some (Service.Crash_before 2) }
  in
  (match Service.request_of_line (Service.request_line rq) with
  | Error e -> Alcotest.fail ("request reparse: " ^ e)
  | Ok rq' ->
      Alcotest.(check string) "request roundtrips" (Service.request_line rq)
        (Service.request_line rq'));
  let rs =
    { Service.rs_id = 12;
      rs_status =
        Service.Done
          { Service.m_checksum = -1L; m_instrs = 5; m_cycles = 9;
            m_misspecs = 1; m_energy = 12.5; m_epi = 2.5 };
      rs_attempts = 2; rs_cached = true; rs_ms = 1.25 }
  in
  (match
     Service.response_of_json
       (Result.get_ok (Jsonx.parse (Service.response_line rs)))
   with
  | Error e -> Alcotest.fail ("response reparse: " ^ e)
  | Ok rs' ->
      Alcotest.(check string) "response roundtrips"
        (Service.response_line rs) (Service.response_line rs'));
  (* checksum travels as a string: no precision loss through Num *)
  (match
     Service.response_of_json
       (Result.get_ok (Jsonx.parse (Service.response_line rs)))
   with
  | Ok { Service.rs_status = Service.Done m; _ } ->
      Alcotest.(check int64) "int64 checksum survives" (-1L)
        m.Service.m_checksum
  | _ -> Alcotest.fail "expected Done");
  match Service.request_of_line "{\"id\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opless request should not parse"

(* --- backoff ----------------------------------------------------------- *)

let test_backoff_deterministic () =
  let d = Bs_exec.Backoff.delay_ns ~base_ns:1_000_000L ~cap_ns:100_000_000L in
  let a1 = d ~seed:7L ~key:"k" ~attempt:1 in
  Alcotest.(check bool) "same inputs, same delay" true
    (a1 = d ~seed:7L ~key:"k" ~attempt:1);
  Alcotest.(check bool) "seed matters" true
    (a1 <> d ~seed:8L ~key:"k" ~attempt:1);
  Alcotest.(check bool) "key matters" true
    (a1 <> d ~seed:7L ~key:"other" ~attempt:1);
  (* equal jitter: delay in [envelope/2, envelope], envelope capped *)
  for attempt = 1 to 12 do
    let envelope =
      min 100_000_000L
        (Int64.mul 1_000_000L (Int64.shift_left 1L (attempt - 1)))
    in
    let v = d ~seed:3L ~key:"x" ~attempt in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d within the jitter window" attempt)
      true
      (v >= Int64.div envelope 2L && v <= envelope)
  done

let test_backoff_run () =
  (* succeeds on attempt 2: one retry, sleeps once with the attempt-1
     delay *)
  let slept = ref [] in
  let o =
    Bs_exec.Backoff.run ~retries:3
      ~is_transient:(fun _ -> true)
      ~sleep:(fun ns -> slept := ns :: !slept)
      ~delay:(fun ~attempt -> Int64.of_int (100 * attempt))
      (fun ~attempt -> if attempt < 2 then failwith "flaky" else attempt)
  in
  Alcotest.(check int) "succeeded on attempt 2" 2 o.Bs_exec.Backoff.attempts;
  (match o.Bs_exec.Backoff.result with
  | Ok 2 -> ()
  | _ -> Alcotest.fail "expected Ok 2");
  Alcotest.(check (list int64)) "slept the attempt-1 delay" [ 100L ] !slept;
  (* exhausts retries *)
  let o =
    Bs_exec.Backoff.run ~retries:2
      ~is_transient:(fun _ -> true)
      ~sleep:(fun _ -> ())
      ~delay:(fun ~attempt:_ -> 0L)
      (fun ~attempt:_ -> failwith "always")
  in
  Alcotest.(check int) "1 + retries executions" 3 o.Bs_exec.Backoff.attempts;
  (match o.Bs_exec.Backoff.result with
  | Error (Failure m, _) when m = "always" -> ()
  | _ -> Alcotest.fail "expected the final failure");
  (* a non-transient failure ends the loop immediately *)
  let o =
    Bs_exec.Backoff.run ~retries:5
      ~is_transient:(fun _ -> false)
      ~sleep:(fun _ -> Alcotest.fail "must not sleep")
      ~delay:(fun ~attempt:_ -> 0L)
      (fun ~attempt:_ -> raise Exit)
  in
  Alcotest.(check int) "no retry of a permanent failure" 1
    o.Bs_exec.Backoff.attempts

(* --- disk cache -------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_disk_cache_basic () =
  with_tmpdir @@ fun dir ->
  let c = Disk_cache.open_dir dir in
  Alcotest.(check (option bytes)) "empty miss" None (Disk_cache.load c ~key:"a");
  Disk_cache.store c ~key:"a" (Bytes.of_string "payload-a");
  Disk_cache.store c ~key:"b" (Bytes.of_string "payload-b");
  Alcotest.(check (option bytes)) "hit" (Some (Bytes.of_string "payload-a"))
    (Disk_cache.load c ~key:"a");
  Alcotest.(check int) "two entries" 2 (Disk_cache.entries c);
  (* a reopened cache serves the same entries *)
  let c2 = Disk_cache.open_dir dir in
  Alcotest.(check (option bytes)) "hit after reopen"
    (Some (Bytes.of_string "payload-b"))
    (Disk_cache.load c2 ~key:"b");
  Disk_cache.invalidate c2 ~key:"b";
  Alcotest.(check (option bytes)) "invalidated" None
    (Disk_cache.load c2 ~key:"b");
  Alcotest.(check int) "invalidation quarantines" 1
    (Disk_cache.quarantine_count c2)

let test_disk_cache_corruption () =
  with_tmpdir @@ fun dir ->
  let c = Disk_cache.open_dir dir in
  Disk_cache.store c ~key:"k" (Bytes.of_string "precious bits");
  let path = Disk_cache.key_path c ~key:"k" in
  (* flip payload bytes on disk behind the cache's back *)
  let s = read_file path in
  let oc = open_out_bin path in
  output_string oc (String.sub s 0 (String.length s - 4));
  output_string oc "XXXX";
  close_out oc;
  Alcotest.(check (option bytes)) "corrupt entry is a miss, not a crash"
    None
    (Disk_cache.load c ~key:"k");
  Alcotest.(check int) "corrupt entry quarantined" 1
    (Disk_cache.quarantine_count c);
  Alcotest.(check bool) "entry removed from the live set" true
    (not (Sys.file_exists path));
  (* the key is writable again and round-trips *)
  Disk_cache.store c ~key:"k" (Bytes.of_string "recompiled");
  Alcotest.(check (option bytes)) "recompiled entry served"
    (Some (Bytes.of_string "recompiled"))
    (Disk_cache.load c ~key:"k")

let test_disk_cache_tmp_sweep () =
  with_tmpdir @@ fun dir ->
  let c = Disk_cache.open_dir dir in
  Disk_cache.store c ~key:"k" (Bytes.of_string "v");
  (* simulate a writer killed mid-store: an orphan temp file (in-flight
     writes live in the root until their atomic rename into a shard) *)
  let orphan = Filename.concat dir "tmp-9999-0-deadbeef" in
  let oc = open_out_bin orphan in
  output_string oc "half a write";
  close_out oc;
  let c2 = Disk_cache.open_dir dir in
  Alcotest.(check bool) "orphan temp swept on reopen" true
    (not (Sys.file_exists orphan));
  Alcotest.(check int) "sweep counted" 1 (Disk_cache.stats c2).Disk_cache.swept_tmp;
  Alcotest.(check (option bytes)) "committed entry untouched"
    (Some (Bytes.of_string "v"))
    (Disk_cache.load c2 ~key:"k")

(* --- persistent compile cache ------------------------------------------ *)

let test_persistent_compile_cache () =
  with_tmpdir @@ fun dir ->
  let w = Bs_workloads.Registry.find "CRC32" in
  Fun.protect
    ~finally:(fun () ->
      Compile_cache.set_persistent None;
      Compile_cache.reset ())
    (fun () ->
      Compile_cache.reset ();
      Compile_cache.set_persistent (Some dir);
      let origin = ref Compile_cache.Fresh in
      let c1 =
        Experiment.compile_workload ~origin Driver.bitspec_config w
      in
      Alcotest.(check bool) "first compile is fresh" true
        (!origin = Compile_cache.Fresh);
      (* drop the in-memory layer: the disk layer must serve the reload *)
      Compile_cache.reset ();
      Compile_cache.set_persistent (Some dir);
      let origin = ref Compile_cache.Fresh in
      let c2 =
        Experiment.compile_workload ~origin Driver.bitspec_config w
      in
      Alcotest.(check bool) "recompile served from disk" true
        (!origin = Compile_cache.Disk);
      (* the deserialized compile simulates to the same checksum *)
      let run (c : Driver.compiled) =
        let r =
          Driver.run_machine
            ~setup:(w.Bs_workloads.Workload.test.Bs_workloads.Workload.setup
                      c.Driver.ir)
            c ~entry:w.Bs_workloads.Workload.entry
            ~args:w.Bs_workloads.Workload.test.Bs_workloads.Workload.args
        in
        Experiment.metrics_of_run r
      in
      let m1 = run c1 and m2 = run c2 in
      Alcotest.(check int64) "identical checksum" m1.Experiment.checksum
        m2.Experiment.checksum;
      Alcotest.(check int) "identical cycles" m1.Experiment.cycles
        m2.Experiment.cycles)

(* --- server engine ----------------------------------------------------- *)

let bench_crc =
  { Service.b_workload = "CRC32"; b_arch = Driver.Bitspec_arch;
    b_heuristic = Bs_interp.Profile.Hmax; b_no_expander = false }

let rq ?deadline_ms ?fuel ?chaos id op =
  { Service.rq_id = id; rq_op = op; rq_deadline_ms = deadline_ms;
    rq_fuel = fuel; rq_chaos = chaos }

let with_server ?(cfg = Server.default_config) f =
  Compile_cache.reset ();
  let t = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let fast_cfg =
  { Server.default_config with
    Server.jobs = 2; backoff_base_ms = 1.0; backoff_cap_ms = 4.0 }

let test_server_basics () =
  with_server ~cfg:fast_cfg @@ fun t ->
  (match (Server.submit_wait t (rq 1 Service.Ping)).Service.rs_status with
  | Service.Pong -> ()
  | _ -> Alcotest.fail "expected pong");
  let r1 = Server.submit_wait t (rq 2 (Service.Bench bench_crc)) in
  (match r1.Service.rs_status with
  | Service.Done m ->
      Alcotest.(check bool) "ran some instructions" true
        (m.Service.m_instrs > 0)
  | _ -> Alcotest.fail "expected ok");
  Alcotest.(check bool) "first compile not cached" false
    r1.Service.rs_cached;
  let r2 = Server.submit_wait t (rq 3 (Service.Bench bench_crc)) in
  Alcotest.(check bool) "second identical request cached" true
    r2.Service.rs_cached;
  (* unknown workload: structured diagnostic, server stays up *)
  (match
     (Server.submit_wait t
        (rq 4 (Service.Bench { bench_crc with Service.b_workload = "nope" })))
       .Service.rs_status
   with
  | Service.Failed (d :: _) ->
      Alcotest.(check string) "BS-SRV-02" "BS-SRV-02" d.Diag.code
  | _ -> Alcotest.fail "expected a structured failure");
  match (Server.submit_wait t (rq 5 (Service.Bench bench_crc))).Service.rs_status with
  | Service.Done _ -> ()
  | _ -> Alcotest.fail "server still serves after a poisoned request"

let test_server_retry_and_exhaustion () =
  with_server ~cfg:fast_cfg @@ fun t ->
  (* crash:2 fails attempt 1; the retry succeeds *)
  let r =
    Server.submit_wait t
      (rq 1 (Service.Bench bench_crc) ~chaos:(Service.Crash_before 2))
  in
  (match r.Service.rs_status with
  | Service.Done _ -> ()
  | _ -> Alcotest.fail "expected success on attempt 2");
  Alcotest.(check int) "two attempts" 2 r.Service.rs_attempts;
  (* crash:99 exhausts the retry budget: BS-SRV-03 with the count *)
  let r =
    Server.submit_wait t
      (rq 2 (Service.Bench bench_crc) ~chaos:(Service.Crash_before 99))
  in
  (match r.Service.rs_status with
  | Service.Failed (d :: _) ->
      Alcotest.(check string) "BS-SRV-03" "BS-SRV-03" d.Diag.code
  | _ -> Alcotest.fail "expected exhaustion failure");
  Alcotest.(check int) "1 + retries attempts"
    (1 + fast_cfg.Server.retries)
    r.Service.rs_attempts;
  let s = Server.stats t in
  Alcotest.(check bool) "retries counted" true (s.Service.st_retries >= 3)

let test_server_watchdog_timeout () =
  with_server ~cfg:fast_cfg @@ fun t ->
  (* a wedged worker (hang without polling) must not lose the request:
     the watchdog answers Timed_out at the deadline *)
  let t0 = Unix.gettimeofday () in
  let r =
    Server.submit_wait t
      (rq 1 (Service.Bench bench_crc) ~deadline_ms:100
         ~chaos:(Service.Hang_ms 1500))
  in
  let waited = Unix.gettimeofday () -. t0 in
  (match r.Service.rs_status with
  | Service.Timed_out -> ()
  | _ -> Alcotest.fail "expected timeout");
  Alcotest.(check bool) "answered at the deadline, not the hang" true
    (waited < 1.2);
  (* the server still works afterwards (replacement capacity) *)
  match (Server.submit_wait t (rq 2 (Service.Bench bench_crc))).Service.rs_status with
  | Service.Done _ ->
      let s = Server.stats t in
      Alcotest.(check int) "timeout counted" 1 s.Service.st_timeouts
  | _ -> Alcotest.fail "server wedged after a hung worker"

let test_server_load_shedding () =
  (* one slow worker, queue depth 2: a burst must shed the overflow with
     a structured Overloaded, never block or drop *)
  let cfg = { fast_cfg with Server.jobs = 1; queue_depth = 2 } in
  with_server ~cfg @@ fun t ->
  let n = 12 in
  let got = Array.make n None in
  let remaining = Atomic.make n in
  for i = 0 to n - 1 do
    Server.submit t
      (rq (i + 1) (Service.Bench bench_crc) ~chaos:(Service.Hang_ms 60))
      (fun rs ->
        got.(i) <- Some rs;
        Atomic.decr remaining)
  done;
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Atomic.get remaining > 0 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check int) "every request answered" 0 (Atomic.get remaining);
  let shed, other =
    Array.fold_left
      (fun (s, o) r ->
        match r with
        | Some { Service.rs_status = Service.Overloaded _; _ } -> (s + 1, o)
        | Some _ -> (s, o + 1)
        | None -> (s, o))
      (0, 0) got
  in
  Alcotest.(check bool) "burst shed some requests" true (shed > 0);
  Alcotest.(check int) "shed + served = all" n (shed + other);
  let s = Server.stats t in
  Alcotest.(check int) "shed counted" shed s.Service.st_shed

let test_server_jobs_identical_log () =
  (* satellite 3 + tentpole determinism: the canonical log of a seeded
     zipfian run is byte-identical serving with 1 worker or 4 *)
  let lg =
    { Loadgen.default_cfg with
      Loadgen.lg_requests = 40; lg_clients = 3; lg_crash_every = 7 }
  in
  let log jobs =
    Compile_cache.reset ();
    let t = Server.start { fast_cfg with Server.jobs } in
    Fun.protect
      ~finally:(fun () -> Server.stop t)
      (fun () ->
        let pairs, s = Loadgen.run lg (Loadgen.In_process t) in
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d: all requests answered" jobs)
          lg.Loadgen.lg_requests s.Loadgen.sm_requests;
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: retries exercised" jobs)
          true (s.Loadgen.sm_retries > 0);
        String.concat "\n" (Loadgen.canonical_log pairs))
  in
  Alcotest.(check string) "canonical log: jobs=1 == jobs=4" (log 1) (log 4)

let test_server_draining_refuses () =
  with_server ~cfg:fast_cfg @@ fun t ->
  (match (Server.submit_wait t (rq 1 Service.Shutdown)).Service.rs_status with
  | Service.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  Alcotest.(check bool) "draining" true (Server.draining t);
  match (Server.submit_wait t (rq 2 (Service.Bench bench_crc))).Service.rs_status with
  | Service.Failed _ -> ()
  | _ -> Alcotest.fail "draining server must refuse new bench work"

let suite =
  [ Alcotest.test_case "jsonx roundtrips" `Quick test_jsonx_roundtrip;
    Alcotest.test_case "jsonx rejects malformed input" `Quick
      test_jsonx_errors;
    Alcotest.test_case "protocol codec roundtrips" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "backoff is a pure function of its seed" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff retry loop" `Quick test_backoff_run;
    Alcotest.test_case "disk cache stores and reopens" `Quick
      test_disk_cache_basic;
    Alcotest.test_case "disk cache quarantines corruption" `Quick
      test_disk_cache_corruption;
    Alcotest.test_case "disk cache sweeps orphan temp files" `Quick
      test_disk_cache_tmp_sweep;
    Alcotest.test_case "persistent compile cache survives restart" `Slow
      test_persistent_compile_cache;
    Alcotest.test_case "server serves, caches and isolates" `Slow
      test_server_basics;
    Alcotest.test_case "server retries transient crashes" `Slow
      test_server_retry_and_exhaustion;
    Alcotest.test_case "watchdog answers for wedged workers" `Slow
      test_server_watchdog_timeout;
    Alcotest.test_case "bounded queue sheds structurally" `Slow
      test_server_load_shedding;
    Alcotest.test_case "canonical log is jobs-independent" `Slow
      test_server_jobs_identical_log;
    Alcotest.test_case "draining server refuses new work" `Quick
      test_server_draining_refuses ]
