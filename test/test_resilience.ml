open Bs_support
open Bs_interp
open Bs_sim
open Bs_workloads
open Bitspec

(* Robustness: the degrading driver, structured diagnostics, unified
   out-of-fuel outcomes, and the fault-injection campaign machinery. *)

(* A two-function program: [mix] is called from the squeezable hot loop in
   [f].  Compiler faults are injected into [mix]; [f] must keep its
   speculative compilation. *)
let two_func_source =
  "u8 buf[64];\n\
   u32 mix(u32 x) {\n\
   \  u32 s = 0;\n\
   \  for (u32 i = 0; i < 8; i += 1) { s += (x >> i) & 1; }\n\
   \  return s;\n\
   }\n\
   u32 f(u32 n) {\n\
   \  u32 acc = 0;\n\
   \  for (u32 i = 0; i < n; i += 1) {\n\
   \    acc = (acc + mix(buf[i & 63]) + (i & 255)) & 0xFFFF;\n\
   \  }\n\
   \  return acc;\n\
   }\n"

let checksum_of_machine (c : Driver.compiled) args =
  Int64.logand (Driver.run_machine c ~entry:"f" ~args).Bs_sim.Machine.r0
    0xFFFFFFFFL

let checksum_of_reference (c : Driver.compiled) args =
  let r = Driver.run_reference c ~entry:"f" ~args in
  Int64.logand (Option.value r.Interp.ret ~default:0L) 0xFFFFFFFFL

let compile_with_fault pass =
  Driver.compile ~mode:Driver.Degrade
    ~pass_fault:{ Driver.fault_pass = pass; fault_func = "mix" }
    ~config:Driver.bitspec_config ~source:two_func_source
    ~train:[ ("f", [ 60L ]) ] ()

let check_degraded_but_correct pass expected_code =
  let c = compile_with_fault pass in
  let diags = c.Driver.diagnostics in
  Alcotest.(check bool) "carries a diagnostic" true (Diag.errors diags <> []);
  let d = List.hd (Diag.errors diags) in
  Alcotest.(check string) "diagnostic code" expected_code d.Diag.code;
  Alcotest.(check (option string)) "diagnostic names the function"
    (Some "mix") d.Diag.func;
  (* the module still compiles and computes the right answer *)
  let args = [ 100L ] in
  Alcotest.(check int64) "checksum matches the reference"
    (checksum_of_reference c args)
    (checksum_of_machine c args);
  (* the healthy function kept its speculative compilation *)
  match c.Driver.squeeze_stats with
  | Some s -> Alcotest.(check bool) "f still squeezed" true (s.Squeezer.squeezed > 0)
  | None -> Alcotest.fail "no squeeze stats in a speculative build"

let test_degrade_squeeze () =
  check_degraded_but_correct Driver.Fault_squeeze "BS-SQZ-01"

let test_degrade_regalloc () =
  check_degraded_but_correct Driver.Fault_regalloc "BS-RA-01"

let test_strict_fails_fast () =
  match
    Driver.compile ~mode:Driver.Strict
      ~pass_fault:{ Driver.fault_pass = Driver.Fault_squeeze; fault_func = "mix" }
      ~config:Driver.bitspec_config ~source:two_func_source
      ~train:[ ("f", [ 60L ]) ] ()
  with
  | exception Driver.Injected_fault _ -> ()
  | _ -> Alcotest.fail "strict mode must propagate the pass failure"

let test_clean_build_has_no_diagnostics () =
  let c =
    Driver.compile ~mode:Driver.Degrade ~config:Driver.bitspec_config
      ~source:two_func_source ~train:[ ("f", [ 60L ]) ] ()
  in
  Alcotest.(check int) "no diagnostics" 0 (List.length c.Driver.diagnostics)

let test_try_compile_frontend_error () =
  match
    Driver.try_compile ~config:Driver.bitspec_config
      ~source:"u32 f( { return }" ~train:[] ()
  with
  | Error (d :: _) ->
      Alcotest.(check bool) "error severity" true (Diag.is_error d);
      Alcotest.(check bool) "parse phase" true (d.Diag.phase = Diag.Parse);
      Alcotest.(check bool) "has a source line" true (d.Diag.line <> None)
  | Error [] -> Alcotest.fail "Error with no diagnostics"
  | Ok _ -> Alcotest.fail "garbage source compiled"

let test_diag_format () =
  let d =
    Diag.error ~code:"BS-SQZ-01" ~phase:Diag.Squeeze ~func:"crc32" "boom"
  in
  let s = Diag.to_string d in
  List.iter
    (fun part ->
      Alcotest.(check bool) (part ^ " in rendering") true
        (Str_exists.contains s part))
    [ "error"; "BS-SQZ-01"; "squeeze"; "crc32"; "boom" ]

(* Out-of-fuel is one structured outcome across both execution engines. *)
let test_fuel_outcome_unified () =
  let source = "u32 f() { u32 x = 1; while (x) { x = (x | 1); } return x; }" in
  let m = Bs_frontend.Lower.compile source in
  let ir, _ =
    Interp.run_fresh ~opts:{ Interp.default_opts with fuel = 500 } m
      ~entry:"f" ~args:[]
  in
  let c =
    Driver.compile ~config:Driver.baseline_config ~source ~train:[] ()
  in
  let mr = Driver.run_machine ~fuel:500 c ~entry:"f" ~args:[] in
  Alcotest.(check bool) "interp ran out of fuel" true
    (ir.Interp.outcome = Outcome.Out_of_fuel);
  Alcotest.(check bool) "machine ran out of fuel" true
    (mr.Bs_sim.Machine.outcome = Outcome.Out_of_fuel);
  Alcotest.(check bool) "same structured outcome" true
    (ir.Interp.outcome = mr.Bs_sim.Machine.outcome)

(* --- fault-injection campaigns ----------------------------------------- *)

(* A small, fast workload for campaign tests: byte traffic through a
   squeezed accumulator loop, every value fitting an 8-bit slice. *)
let tiny_workload : Workload.t =
  let source =
    "u8 buf[64];\n\
     u32 f(u32 n) {\n\
     \  u32 acc = 0;\n\
     \  for (u32 i = 0; i < n; i += 1) {\n\
     \    u32 x = buf[i & 63];\n\
     \    acc = ((acc + x) ^ (i & 15)) & 255;\n\
     \  }\n\
     \  return acc;\n\
     }\n"
  in
  let input args : Workload.input =
    { Workload.args;
      setup =
        (fun m mem ->
          Workload.fill_bytes (Rng.create 5L) m mem ~name:"buf" ~count:64) }
  in
  { Workload.name = "tiny"; description = "campaign test workload";
    source; entry = "f"; train = input [ 60L ]; test = input [ 400L ];
    alt = input [ 100L ]; narrow_source = None }

let verdict_names (c : Campaign.t) =
  List.map
    (fun (t : Faultinject.trial) -> Faultinject.describe_trial t)
    c.Campaign.trials

let test_campaign_deterministic () =
  let run () = Campaign.run ~trials:25 ~seed:7L tiny_workload in
  let a = run () and b = run () in
  Alcotest.(check int) "trial count" 25 (List.length a.Campaign.trials);
  Alcotest.(check (list string)) "same seed, same trials, bit for bit"
    (verdict_names a) (verdict_names b)

let test_campaign_seed_sensitivity () =
  let a = Campaign.run ~trials:25 ~seed:7L tiny_workload in
  let b = Campaign.run ~trials:25 ~seed:8L tiny_workload in
  Alcotest.(check bool) "different seeds, different faults" true
    (verdict_names a <> verdict_names b)

let test_campaign_detects_faults () =
  (* stringsearch packs many 8-bit slices per register, so some register
     flips land in a sibling slice the misspeculation hardware then
     catches; seed 5 yields two such faults within 20 trials *)
  let w = Registry.find "stringsearch" in
  let c = Campaign.run ~trials:20 ~seed:5L w in
  let s = Faultinject.summarize c.Campaign.trials in
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Faultinject.summary_rows s)
  in
  Alcotest.(check int) "every trial classified" 20 total;
  Alcotest.(check bool)
    (Printf.sprintf "misspeculation hardware detects some flips (%s)"
       (String.concat ", "
          (List.map
             (fun (n, k) -> Printf.sprintf "%s=%d" n k)
             (Faultinject.summary_rows s))))
    true
    (List.exists
       (fun (t : Faultinject.trial) ->
         match t.Faultinject.verdict with
         | Faultinject.Detected _ -> true
         | _ -> false)
       c.Campaign.trials);
  (* the report renders the table and the detected examples *)
  let r = Campaign.report c in
  List.iter
    (fun part ->
      Alcotest.(check bool) (part ^ " in report") true
        (Str_exists.contains r part))
    [ "stringsearch"; "seed 5"; "verdict"; "detected";
      "misspeculation hardware" ]

let suite =
  [ Alcotest.test_case "degrade: squeezer fault isolated" `Quick
      test_degrade_squeeze;
    Alcotest.test_case "degrade: regalloc fault isolated" `Quick
      test_degrade_regalloc;
    Alcotest.test_case "strict mode fails fast" `Quick test_strict_fails_fast;
    Alcotest.test_case "clean degrade build: no diagnostics" `Quick
      test_clean_build_has_no_diagnostics;
    Alcotest.test_case "try_compile: front-end errors become diagnostics"
      `Quick test_try_compile_frontend_error;
    Alcotest.test_case "diagnostic rendering" `Quick test_diag_format;
    Alcotest.test_case "out-of-fuel outcome unified across engines" `Quick
      test_fuel_outcome_unified;
    Alcotest.test_case "campaign: fixed seed is deterministic" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "campaign: seed varies the faults" `Quick
      test_campaign_seed_sensitivity;
    Alcotest.test_case "campaign: injected faults detected by hardware"
      `Quick test_campaign_detects_faults ]
