open Bs_support
open Bitspec

(* Differential fuzzing: a thin driver over the Bs_fuzz subsystem (the
   generator, oracle, reducer and campaign live in lib/fuzz; this file
   only asserts properties of them).

   Covered here:
   - random programs agree across every build configuration (the oracle
     returns [Agree] on a clean compiler);
   - [Driver.try_compile] is total, including on corrupted input;
   - adversarial front-end input (100k-deep nesting, out-of-range
     literals) yields structured diagnostics, not a blown host stack;
   - the planted-bug self-test: with a forced miscompile injected, a
     bounded campaign detects it and the reducer shrinks the crasher to a
     handful of lines that still reproduce the same bucket;
   - equal seeds give bit-identical campaigns;
   - every reproducer in test/corpus/ replays into its recorded bucket. *)

let check_seed seed =
  let source = Bs_fuzz.Gen.program seed in
  let args = [ Bs_fuzz.Gen.entry_arg seed ] in
  match Bs_fuzz.Oracle.run ~source ~entry:Bs_fuzz.Gen.entry ~args () with
  | Bs_fuzz.Oracle.Agree _ -> true
  | Bs_fuzz.Oracle.Skip _ -> true (* no ground truth: vacuous *)
  | Bs_fuzz.Oracle.Crash _ as v ->
      QCheck.Test.fail_reportf "seed %d: %s\n%s" seed
        (Bs_fuzz.Oracle.describe v) source

let prop_fuzz =
  QCheck.Test.make ~name:"random programs agree across all builds" ~count:60
    QCheck.(int_bound 1_000_000)
    check_seed

(* Robustness: [Driver.try_compile] is total.  For any generated program —
   including ones corrupted mid-stream to exercise the lexer, parser and
   typechecker error paths — it must return [Ok] or [Error diags], never
   raise.  Ok results must carry a program; Error results at least one
   error-severity diagnostic. *)
let try_compile_total seed =
  let rng = Rng.create (Int64.of_int (seed + 777)) in
  let source = Bs_fuzz.Gen.corrupt rng (Bs_fuzz.Gen.program seed) in
  match
    Driver.try_compile ~config:Driver.bitspec_config ~source
      ~train:[ (Bs_fuzz.Gen.entry, Bs_fuzz.Gen.train_args) ] ()
  with
  | Ok c -> Array.length c.Driver.program.Bs_backend.Asm.code > 0
  | Error diags -> Diag.errors diags <> []
  | exception e ->
      QCheck.Test.fail_reportf "try_compile raised %s on:\n%s"
        (Printexc.to_string e) source

let prop_try_compile_total =
  QCheck.Test.make ~name:"try_compile never raises (degraded driver)"
    ~count:80
    QCheck.(int_bound 1_000_000)
    try_compile_total

(* a few pinned seeds so failures reproduce deterministically in CI *)
let test_pinned_seeds () =
  List.iter
    (fun seed ->
      Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (check_seed seed))
    [ 1; 2; 3; 42; 1234; 99999; 424242; 7777777 ]

(* --- adversarial front-end input --------------------------------------- *)

(* Nesting far past any reasonable program: the parser must refuse with a
   structured Parse diagnostic instead of a host Stack_overflow. *)
let test_adversarial_nesting () =
  let deep_parens =
    "u32 f(u32 p) { return " ^ String.make 100_000 '(' ^ "1"
    ^ String.make 100_000 ')' ^ "; }"
  in
  let deep_unary = "u32 f(u32 p) { return " ^ String.make 100_000 '~' ^ "1; }" in
  let deep_blocks =
    "u32 f(u32 p) { " ^ String.make 100_000 '{' ^ String.make 100_000 '}'
    ^ " return p; }"
  in
  let huge_literal = "u32 f(u32 p) { return 99999999999999999999999999; }" in
  List.iter
    (fun (name, source) ->
      match
        Driver.try_compile ~config:Driver.bitspec_config ~source
          ~train:[ ("f", [ 1L ]) ] ()
      with
      | Ok _ -> Alcotest.failf "%s: expected a front-end rejection" name
      | Error diags ->
          let errs = Diag.errors diags in
          Alcotest.(check bool) (name ^ ": has error diag") true (errs <> []);
          List.iter
            (fun (d : Diag.t) ->
              Alcotest.(check string) (name ^ ": parse phase") "parse"
                (Diag.phase_name d.Diag.phase))
            errs
      | exception e ->
          Alcotest.failf "%s: raised %s" name (Printexc.to_string e))
    [ ("parens", deep_parens); ("unary", deep_unary);
      ("blocks", deep_blocks); ("literal", huge_literal) ]

(* --- planted-bug self-test --------------------------------------------- *)

let miscompile_f =
  { Driver.fault_pass = Driver.Fault_miscompile; fault_func = "f" }

(* With a silent miscompile forced into every compile, a 30-trial
   campaign must catch it, and the reducer must shrink the first crasher
   to <= 20 lines that land in the same bucket when replayed. *)
let test_planted_miscompile () =
  let t = Bs_fuzz.Fuzz.run ~plant:miscompile_f ~seed:1 ~trials:30 () in
  Alcotest.(check bool) "campaign caught the miscompile" true
    (t.Bs_fuzz.Fuzz.crashes <> []);
  let c = List.hd t.Bs_fuzz.Fuzz.crashes in
  let lines = Bs_fuzz.Reduce.line_count c.Bs_fuzz.Fuzz.reduced in
  Alcotest.(check bool)
    (Printf.sprintf "reduced to %d lines (<= 20)" lines)
    true (lines <= 20);
  let key = Bucket.key c.Bs_fuzz.Fuzz.bucket in
  match
    Bs_fuzz.Oracle.run ~plant:miscompile_f ~source:c.Bs_fuzz.Fuzz.reduced
      ~entry:Bs_fuzz.Gen.entry ~args:c.Bs_fuzz.Fuzz.args ()
  with
  | Bs_fuzz.Oracle.Crash { bucket; _ } ->
      Alcotest.(check string) "reduced reproducer lands in the same bucket"
        key (Bucket.key bucket)
  | v ->
      Alcotest.failf "reduced reproducer did not crash: %s"
        (Bs_fuzz.Oracle.describe v)

(* Reduction preserves the bucket for arbitrary seeds, not just the
   campaign's pick (the reducer's predicate enforces it; this checks the
   plumbing end to end, including that reduction never grows a program). *)
let prop_reduce_preserves_bucket =
  QCheck.Test.make ~name:"reduction preserves the crash bucket" ~count:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let source = Bs_fuzz.Gen.program ~size:6 seed in
      let args = [ Bs_fuzz.Gen.entry_arg seed ] in
      let oracle s =
        Bs_fuzz.Oracle.run ~plant:miscompile_f ~source:s
          ~entry:Bs_fuzz.Gen.entry ~args ()
      in
      match oracle source with
      | Bs_fuzz.Oracle.Agree _ | Bs_fuzz.Oracle.Skip _ ->
          true (* this seed's miscompile is input-invisible: vacuous *)
      | Bs_fuzz.Oracle.Crash { bucket; _ } ->
          let key = Bucket.key bucket in
          let pred s =
            match oracle s with
            | Bs_fuzz.Oracle.Crash { bucket = b; _ } -> Bucket.key b = key
            | _ -> false
          in
          let reduced = Bs_fuzz.Reduce.run ~pred source in
          pred reduced
          && Bs_fuzz.Reduce.line_count reduced
             <= Bs_fuzz.Reduce.line_count source)

(* Equal seeds must yield bit-identical campaigns (report and all). *)
let test_campaign_deterministic () =
  let run () =
    Bs_fuzz.Fuzz.run ~plant:miscompile_f ~reduce:false ~seed:9 ~trials:12 ()
  in
  let a = run () and b = run () in
  Alcotest.(check string) "reports identical" (Bs_fuzz.Fuzz.report a)
    (Bs_fuzz.Fuzz.report b);
  Alcotest.(check (list int)) "crash seeds identical"
    (List.map (fun c -> c.Bs_fuzz.Fuzz.tseed) a.Bs_fuzz.Fuzz.crashes)
    (List.map (fun c -> c.Bs_fuzz.Fuzz.tseed) b.Bs_fuzz.Fuzz.crashes)

(* --- corpus replay ----------------------------------------------------- *)

(* Every reproducer under test/corpus/ must land in its recorded bucket.
   (dune copies the corpus next to the test binary; see test/dune.) *)
let test_corpus_replay () =
  let files = Bs_fuzz.Corpus.list_dir "corpus" in
  Alcotest.(check bool) "corpus is not empty" true (files <> []);
  List.iter
    (fun path ->
      match Bs_fuzz.Corpus.load path with
      | None, _ -> Alcotest.failf "%s: no metadata header" path
      | Some ({ Bs_fuzz.Corpus.power = Some p; _ } as m), source -> (
          (* intermittent-power reproducer: replay under the recorded
             outage trace and checkpoint policy *)
          let v =
            Bs_fuzz.Oracle.run_power
              ~train:[ (m.Bs_fuzz.Corpus.entry, m.Bs_fuzz.Corpus.train) ]
              ~source ~entry:m.Bs_fuzz.Corpus.entry
              ~args:m.Bs_fuzz.Corpus.args ~power:p ()
          in
          match v.Bs_fuzz.Oracle.p_bucket with
          | Some bucket ->
              Alcotest.(check string)
                (Filename.basename path ^ ": bucket")
                m.Bs_fuzz.Corpus.bucket_key (Bucket.key bucket)
          | None ->
              Alcotest.failf "%s: did not reproduce (%s)" path
                (Bs_fuzz.Oracle.describe_power v))
      | Some m, source -> (
          match
            Bs_fuzz.Oracle.run ?plant:m.Bs_fuzz.Corpus.fault
              ~train:[ (m.Bs_fuzz.Corpus.entry, m.Bs_fuzz.Corpus.train) ]
              ~source ~entry:m.Bs_fuzz.Corpus.entry
              ~args:m.Bs_fuzz.Corpus.args ()
          with
          | Bs_fuzz.Oracle.Crash { bucket; _ } ->
              Alcotest.(check string)
                (Filename.basename path ^ ": bucket")
                m.Bs_fuzz.Corpus.bucket_key (Bucket.key bucket)
          | v ->
              Alcotest.failf "%s: did not reproduce (%s)" path
                (Bs_fuzz.Oracle.describe v)))
    files

let suite =
  [ Alcotest.test_case "pinned fuzz seeds" `Quick test_pinned_seeds;
    QCheck_alcotest.to_alcotest prop_fuzz;
    QCheck_alcotest.to_alcotest prop_try_compile_total;
    Alcotest.test_case "adversarial nesting rejects cleanly" `Quick
      test_adversarial_nesting;
    Alcotest.test_case "planted miscompile is caught and minimized" `Quick
      test_planted_miscompile;
    QCheck_alcotest.to_alcotest prop_reduce_preserves_bucket;
    Alcotest.test_case "campaigns are seed-deterministic" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "corpus reproducers replay" `Quick test_corpus_replay ]
