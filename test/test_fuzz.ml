open Bs_support
open Bs_interp
open Bitspec

(* Differential fuzzing: generate random MiniC programs from a seed,
   compile them under every configuration, and require that the reference
   interpreter, the BASELINE machine, the squeezed BITSPEC machine (under
   each heuristic) and the Thumb machine all agree.

   Programs are built to terminate by construction (loops have literal
   bounds, divisors are or-ed with 1) and to exercise the squeezer (u8
   arrays, masked accumulators, guard compares against large constants). *)

type genv = {
  rng : Rng.t;
  (* (name, type, assignable): loop counters are readable but never
     assignment targets — clobbering one would unbound its loop *)
  mutable vars : (string * [ `U8 | `U16 | `U32 ] * bool) list;
  buf : Buffer.t;
  mutable depth : int;
}

let ty_name = function `U8 -> "u8" | `U16 -> "u16" | `U32 -> "u32"

let fresh_var ?(assignable = true) g ty =
  let name = Printf.sprintf "v%d" (List.length g.vars) in
  g.vars <- (name, ty, assignable) :: g.vars;
  name

let pick_var g =
  match g.vars with
  | [] -> None
  | vs ->
      let n, _, _ = List.nth vs (Rng.int g.rng (List.length vs)) in
      Some n

let pick_assignable g =
  match List.filter (fun (_, _, a) -> a) g.vars with
  | [] -> None
  | vs ->
      let n, _, _ = List.nth vs (Rng.int g.rng (List.length vs)) in
      Some n

let rec gen_expr g depth =
  if depth = 0 || Rng.int g.rng 4 = 0 then
    match pick_var g with
    | Some v when Rng.bool g.rng -> v
    | _ -> string_of_int (Rng.int g.rng 300)
  else
    let a = gen_expr g (depth - 1) in
    let b = gen_expr g (depth - 1) in
    match Rng.int g.rng 10 with
    | 0 -> Printf.sprintf "(%s + %s)" a b
    | 1 -> Printf.sprintf "(%s - %s)" a b
    | 2 -> Printf.sprintf "(%s * %s)" a b
    | 3 -> Printf.sprintf "(%s & %s)" a b
    | 4 -> Printf.sprintf "(%s | %s)" a b
    | 5 -> Printf.sprintf "(%s ^ %s)" a b
    | 6 -> Printf.sprintf "(%s >> %d)" a (Rng.int_in g.rng 1 7)
    | 7 -> Printf.sprintf "((%s << %d) & 0xFFFFFF)" a (Rng.int_in g.rng 1 4)
    | 8 -> Printf.sprintf "(%s / (%s | 1))" a b
    | _ -> Printf.sprintf "(%s %% ((%s & 63) | 1))" a b

let gen_cond g =
  let a = gen_expr g 1 and b = gen_expr g 1 in
  let op = List.nth [ "<"; "<="; ">"; ">="; "=="; "!=" ] (Rng.int g.rng 6) in
  Printf.sprintf "%s %s %s" a op b

let indent g = String.make (2 * g.depth) ' '

let rec gen_stmt g budget =
  if budget <= 0 then ()
  else begin
    (match Rng.int g.rng 8 with
    | 0 | 1 ->
        (* declaration *)
        let ty = List.nth [ `U8; `U16; `U32; `U32 ] (Rng.int g.rng 4) in
        let e = gen_expr g 2 in
        let v = fresh_var g ty in
        Buffer.add_string g.buf
          (Printf.sprintf "%s%s %s = (%s)(%s);\n" (indent g) (ty_name ty) v
             (ty_name ty) e)
    | 2 | 3 -> (
        (* assignment *)
        match pick_assignable g with
        | Some v ->
            let op = List.nth [ "="; "+="; "^="; "&="; "|=" ] (Rng.int g.rng 5) in
            Buffer.add_string g.buf
              (Printf.sprintf "%s%s %s %s;\n" (indent g) v op (gen_expr g 2))
        | None -> ())
    | 4 when g.depth < 3 ->
        (* bounded loop over a fresh counter; body declarations go out of
           scope at the closing brace *)
        let saved = g.vars in
        let v = fresh_var ~assignable:false g `U32 in
        let n = Rng.int_in g.rng 1 9 in
        Buffer.add_string g.buf
          (Printf.sprintf "%sfor (u32 %s = 0; %s < %d; %s += 1) {\n" (indent g)
             v v n v);
        g.depth <- g.depth + 1;
        gen_stmt g (budget / 2);
        gen_stmt g (budget / 2);
        g.depth <- g.depth - 1;
        Buffer.add_string g.buf (indent g ^ "}\n");
        g.vars <- saved
    | 5 when g.depth < 3 ->
        let saved = g.vars in
        Buffer.add_string g.buf
          (Printf.sprintf "%sif (%s) {\n" (indent g) (gen_cond g));
        g.depth <- g.depth + 1;
        gen_stmt g (budget / 2);
        g.depth <- g.depth - 1;
        g.vars <- saved;
        Buffer.add_string g.buf (indent g ^ "} else {\n");
        g.depth <- g.depth + 1;
        gen_stmt g (budget / 2);
        g.depth <- g.depth - 1;
        Buffer.add_string g.buf (indent g ^ "}\n");
        g.vars <- saved
    | 6 -> (
        (* array traffic through the global byte buffer *)
        match pick_assignable g with
        | Some v ->
            Buffer.add_string g.buf
              (Printf.sprintf "%sbuf[(%s) & 63] = (u8)(%s);\n" (indent g) v
                 (gen_expr g 1));
            Buffer.add_string g.buf
              (Printf.sprintf "%s%s ^= buf[(%s) & 63];\n" (indent g) v
                 (gen_expr g 1))
        | None -> ())
    | _ -> (
        (* a guard compare against a constant the slice cannot hold:
           compare-elimination bait *)
        match pick_var g with
        | Some v ->
            Buffer.add_string g.buf
              (Printf.sprintf "%sif (%s < %d) acc += %s;\n" (indent g) v
                 (Rng.int_in g.rng 300 100000) v)
        | None -> ()));
    gen_stmt g (budget - 1)
  end

let gen_program seed =
  let g =
    { rng = Rng.create (Int64.of_int seed); vars = []; buf = Buffer.create 512;
      depth = 1 }
  in
  Buffer.add_string g.buf "u8 buf[64];\nu32 acc = 0;\nu32 f(u32 p) {\n";
  g.vars <- [ ("p", `U32, true) ];
  gen_stmt g 10;
  let parts =
    List.filter_map
      (fun (v, _, _) -> if Rng.bool g.rng then Some v else None)
      g.vars
  in
  let result = String.concat " ^ " (("acc + p" :: parts)) in
  Buffer.add_string g.buf (Printf.sprintf "  return (%s) & 0xFFFFFF;\n}\n" result);
  Buffer.contents g.buf

let machine_checksum config source arg =
  let c =
    Driver.compile ~config ~source ~train:[ ("f", [ 17L ]) ] ()
  in
  (Driver.run_machine c ~entry:"f" ~args:[ arg ]).Bs_sim.Machine.r0

let check_seed seed =
  let source = gen_program seed in
  let m = Bs_frontend.Lower.compile source in
  let arg = Int64.of_int (seed land 1023) in
  let reference =
    let r, _ = Interp.run_fresh m ~entry:"f" ~args:[ arg ] in
    Int64.logand (Option.value r.Interp.ret ~default:0L) 0xFFFFFFFFL
  in
  List.for_all
    (fun config -> machine_checksum config source arg = reference)
    [ Driver.baseline_config;
      Driver.bitspec_config;
      { Driver.bitspec_config with heuristic = Profile.Havg };
      { Driver.bitspec_config with heuristic = Profile.Hmin };
      Driver.thumb_config ]

let prop_fuzz =
  QCheck.Test.make ~name:"random programs agree across all builds" ~count:60
    QCheck.(int_bound 1_000_000)
    check_seed

(* Robustness: [Driver.try_compile] is total.  For any generated program —
   including ones corrupted mid-stream to exercise the lexer, parser and
   typechecker error paths — it must return [Ok] or [Error diags], never
   raise.  Ok results must carry a program; Error results at least one
   error-severity diagnostic. *)
let corrupt rng source =
  match Rng.int rng 4 with
  | 0 -> source (* leave well-formed *)
  | 1 ->
      (* truncate mid-token: unterminated construct for the parser *)
      String.sub source 0 (1 + Rng.int rng (String.length source - 1))
  | 2 ->
      (* splice in a token no production accepts *)
      let cut = Rng.int rng (String.length source) in
      String.sub source 0 cut ^ " @ $ " ^ String.sub source cut (String.length source - cut)
  | _ ->
      (* undefined variable: a typechecker error on a well-formed parse *)
      source ^ "\nu32 g() { return undefined_variable_xyz; }\n"

let try_compile_total seed =
  let rng = Rng.create (Int64.of_int (seed + 777)) in
  let source = corrupt rng (gen_program seed) in
  match
    Driver.try_compile ~config:Driver.bitspec_config ~source
      ~train:[ ("f", [ 17L ]) ] ()
  with
  | Ok c -> Array.length c.Driver.program.Bs_backend.Asm.code > 0
  | Error diags -> Diag.errors diags <> []
  | exception e ->
      QCheck.Test.fail_reportf "try_compile raised %s on:\n%s"
        (Printexc.to_string e) source

let prop_try_compile_total =
  QCheck.Test.make ~name:"try_compile never raises (degraded driver)"
    ~count:80
    QCheck.(int_bound 1_000_000)
    try_compile_total

(* a few pinned seeds so failures reproduce deterministically in CI *)
let test_pinned_seeds () =
  List.iter
    (fun seed ->
      Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (check_seed seed))
    [ 1; 2; 3; 42; 1234; 99999; 424242; 7777777 ]

let suite =
  [ Alcotest.test_case "pinned fuzz seeds" `Quick test_pinned_seeds;
    QCheck_alcotest.to_alcotest prop_fuzz;
    QCheck_alcotest.to_alcotest prop_try_compile_total ]
