(* bitspecc — the BITSPEC command-line driver.

   Subcommands:
     compile   compile a MiniC file, print IR / MIR / disassembly
     run       compile and simulate, print result and counters
     bench     run a named built-in workload under a configuration
     inject    fault-injection campaign against a built-in workload
               (--model bitflip: soft errors; --model power: outages)
     harvest   intermittent-power campaign with energy accounting
     fuzz      differential fuzzing campaign over random programs
     reduce    minimize (or just replay) a crashing MiniC file
     serve     long-running compile service (socket or stdio JSON)
     client    one request against a running server
     loadgen   seeded zipfian load against a running server
     list      list built-in workloads

   Examples:
     bitspecc compile kernel.mc --emit-ir
     bitspecc run kernel.mc --entry f --args 10,20 --arch bitspec
     bitspecc run kernel.mc --entry f --args 10 --power exp:2000
     bitspecc bench rijndael --arch bitspec --heuristic max
     bitspecc inject crc32 --trials 200 --seed 42
     bitspecc inject crc32 --model power --dist periodic:1000
     bitspecc harvest crc32 --trials 100 --dist exp:2000 --jobs 4
     bitspecc fuzz --seed 1 --trials 500 --budget 60
     bitspecc reduce --check test/corpus/crash.mc
     bitspecc serve --socket /tmp/bs.sock --cache-dir /tmp/bs-cache -j 4
     bitspecc client --socket /tmp/bs.sock bench crc32 --arch bitspec
     bitspecc loadgen --socket /tmp/bs.sock --requests 200 --clients 8

   Compilation degrades gracefully by default: a function a pass cannot
   handle falls back to its baseline (non-speculative) form and the
   diagnostic is printed to stderr.  --strict restores fail-fast. *)

open Cmdliner
open Bitspec
open Bs_support
open Bs_workloads
open Bs_interp
open Bs_energy

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- error reporting --------------------------------------------------- *)

(* Run a subcommand body; turn the expected failures into one-line
   [file:line: message] reports on stderr and exit code 1 instead of an
   uncaught-exception backtrace. *)
let with_reporting ?file f =
  let where line =
    match (file, line) with
    | Some p, Some l -> Printf.sprintf "%s:%d: " p l
    | Some p, None -> p ^ ": "
    | None, _ -> ""
  in
  let fail ?line msg =
    Printf.eprintf "%serror: %s\n" (where line) msg;
    exit 1
  in
  try f () with
  | Bs_frontend.Lexer.Error (m, line) -> fail ~line m
  | Bs_frontend.Parser.Error (m, line) -> fail ~line m
  | Bs_frontend.Typecheck.Error (m, line) -> fail ~line m
  | Bs_frontend.Lower.Error m -> fail m
  | Bs_ir.Verifier.Invalid m ->
      fail ("internal: verifier rejected output: " ^ m)
  | Interp.Trap m -> fail ("interpreter trap: " ^ m)
  | Bs_sim.Machine.Sim_trap k ->
      fail ("simulator trap: " ^ Outcome.trap_message k)
  | Memimage.Fault m -> fail ("memory fault: " ^ m)
  | Invalid_argument m | Failure m -> fail m
  | Sys_error m -> fail m

let print_diagnostics (c : Driver.compiled) =
  List.iter
    (fun d -> prerr_endline (Diag.to_string d))
    c.Driver.diagnostics

let print_remarks (c : Driver.compiled) =
  List.iter
    (fun r -> print_endline (Bs_obs.Remark.to_string r))
    c.Driver.remarks

(* Run [f] with tracing enabled; on exit write the Chrome trace-event
   JSON to [out] and print the per-phase timing table. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some out ->
      Bs_obs.Trace.enable ();
      Fun.protect
        ~finally:(fun () ->
          Bs_obs.Trace.disable ();
          Bs_obs.Trace.write_chrome out;
          Format.printf "%a" Bs_obs.Trace.pp_phase_table ();
          Printf.printf "trace written to %s\n" out)
        f

(* --- shared options ---------------------------------------------------- *)

let arch_conv =
  Arg.enum
    [ ("baseline", Driver.Baseline);
      ("bitspec", Driver.Bitspec_arch);
      ("thumb", Driver.Thumb) ]

let heuristic_conv =
  Arg.enum [ ("max", Profile.Hmax); ("avg", Profile.Havg); ("min", Profile.Hmin) ]

let arch_arg =
  Arg.(value & opt arch_conv Driver.Bitspec_arch
       & info [ "arch" ] ~docv:"ARCH" ~doc:"Target: $(b,baseline), $(b,bitspec) or $(b,thumb).")

let heuristic_arg =
  Arg.(value & opt heuristic_conv Profile.Hmax
       & info [ "heuristic" ] ~docv:"T" ~doc:"Profile heuristic: $(b,max), $(b,avg) or $(b,min).")

let no_expander_arg = Arg.(value & flag & info [ "no-expander" ])

let jobs_arg =
  Arg.(value
       & opt int (Bs_exec.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for independent trials/runs (default: the \
                 number of cores).  Results are identical whatever $(docv).")

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Fail on the first pass error instead of degrading the \
                 offending function to its baseline compilation.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"OUT"
           ~doc:"Record phase/worker spans and write them as Chrome \
                 trace-event JSON to $(docv) (load in Perfetto or \
                 chrome://tracing); a per-phase timing table is printed \
                 on exit.")

let remarks_arg =
  Arg.(value & flag
       & info [ "remarks" ]
           ~doc:"Print optimisation remarks: every variable the squeezer \
                 squeezed or rejected, every compare eliminated, every \
                 bitmask elided — with source lines.  Output is canonical \
                 (sorted), identical at any $(b,--jobs).")

(* intermittent-power options, shared by run / inject / harvest *)

let dist_conv =
  let parse s =
    match Bs_sim.Powertrace.dist_of_string s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "bad distribution %S: expected periodic:N, exp:N or hotpc:N"
                s))
  in
  let print ppf d =
    Format.pp_print_string ppf (Bs_sim.Powertrace.dist_to_string d)
  in
  Arg.conv (parse, print)

let policy_conv =
  let parse s =
    match Bs_sim.Checkpoint.policy_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "bad policy %S: expected interval:N, pre-store or pre-spec" s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Bs_sim.Checkpoint.policy_name p)
  in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(value & opt policy_conv (Bs_sim.Checkpoint.Interval 500)
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Checkpoint policy: $(b,interval:N) (every N instructions), \
                 $(b,pre-store) or $(b,pre-spec).")

let retries_arg =
  Arg.(value & opt int 8
       & info [ "retries" ] ~docv:"N"
           ~doc:"Consecutive restores without an intervening checkpoint \
                 before the policy degrades to checkpoint-every-store; \
                 twice $(docv) gives up as a re-execution livelock.")

let dist_arg ~default =
  Arg.(value & opt dist_conv default
       & info [ "dist" ] ~docv:"DIST"
           ~doc:"Outage distribution: $(b,periodic:N), $(b,exp:N) (mean-N \
                 exponential gaps) or $(b,hotpc:N) (recharge N \
                 instructions, strike at the next speculative site).")

let engine_conv =
  Arg.enum
    [ ("classic", Bs_sim.Machine.Classic);
      ("threaded", Bs_sim.Machine.Threaded);
      ("jit", Bs_sim.Machine.Jit) ]

let engine_arg =
  Arg.(value & opt engine_conv Bs_sim.Machine.Jit
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Machine dispatch engine: $(b,classic) (the reference \
                 fetch-decode-execute loop), $(b,threaded) \
                 (direct-threaded per-PC closures) or $(b,jit) (threaded \
                 plus superblock trace fusion; the default).  All three \
                 produce identical results — only host speed differs.")

let interp_engine_conv =
  Arg.enum [ ("tree", Interp.Tree); ("compiled", Interp.Compiled) ]

let interp_engine_arg =
  Arg.(value & opt interp_engine_conv Interp.Compiled
       & info [ "interp-engine" ] ~docv:"ENGINE"
           ~doc:"IR interpreter engine: $(b,tree) (the reference \
                 instruction-at-a-time walker) or $(b,compiled) \
                 (pre-compiled block closures with fused straight-line \
                 runs; the default).  Both produce identical results — \
                 outputs, counters, per-site misspeculation histograms — \
                 only host speed differs.")

let config_of ~arch ~heuristic ~no_expander =
  let base =
    match arch with
    | Driver.Baseline -> Driver.baseline_config
    | Driver.Bitspec_arch -> Driver.bitspec_config
    | Driver.Thumb -> Driver.thumb_config
  in
  let base = { base with heuristic } in
  if no_expander then { base with expander = Expander.disabled } else base

let mode_of_strict strict = if strict then Driver.Strict else Driver.Degrade

let parse_args s =
  if s = "" then []
  else List.map Int64.of_string (String.split_on_char ',' s)

(* --- compile ----------------------------------------------------------- *)

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let emit_ir = Arg.(value & flag & info [ "emit-ir" ] ~doc:"print SIR") in
  let emit_asm = Arg.(value & flag & info [ "emit-asm" ] ~doc:"print disassembly") in
  let entry = Arg.(value & opt string "run" & info [ "entry" ]) in
  let train = Arg.(value & opt string "" & info [ "train" ] ~doc:"profiling args, comma-separated") in
  let action file arch heuristic emit_ir emit_asm entry train no_expander
      strict trace remarks =
    with_reporting ~file (fun () ->
        let source = read_file file in
        let config = config_of ~arch ~heuristic ~no_expander in
        let c =
          with_trace trace (fun () ->
              Driver.compile ~mode:(mode_of_strict strict) ~config ~source
                ~train:[ (entry, parse_args train) ] ())
        in
        print_diagnostics c;
        if remarks then print_remarks c;
        if emit_ir then print_string (Bs_ir.Printer.module_str c.Driver.ir);
        if emit_asm then
          print_string (Bs_backend.Asm.disassemble c.Driver.program);
        if not (emit_ir || emit_asm || remarks) then
          Printf.printf "compiled %s: %d instructions, Δ = %d\n" file
            (Array.length c.Driver.program.Bs_backend.Asm.code)
            c.Driver.program.Bs_backend.Asm.delta)
  in
  Cmd.v (Cmd.info "compile" ~doc:"compile a MiniC file")
    Term.(const action $ file $ arch_arg $ heuristic_arg $ emit_ir $ emit_asm
          $ entry $ train $ no_expander_arg $ strict_arg $ trace_arg
          $ remarks_arg)

(* --- run --------------------------------------------------------------- *)

let print_metrics (m : Experiment.metrics) =
  Printf.printf "result        = %Ld\n" m.Experiment.checksum;
  Printf.printf "instructions  = %d\n" m.Experiment.instrs;
  Printf.printf "cycles        = %d\n" m.Experiment.cycles;
  Printf.printf "misspecs      = %d\n" m.Experiment.misspecs;
  Printf.printf "energy        = %.1f (alu %.1f, regfile %.1f, D$ %.1f, I$ %.1f, pipe %.1f)\n"
    m.Experiment.total_energy m.Experiment.energy.Energy.alu
    m.Experiment.energy.Energy.regfile m.Experiment.energy.Energy.dcache
    m.Experiment.energy.Energy.icache m.Experiment.energy.Energy.pipeline;
  Printf.printf "EPI           = %.3f\n" m.Experiment.epi;
  Printf.printf "reg accesses  = %d x 32-bit, %d x 8-bit\n"
    m.Experiment.reg_accesses_32 m.Experiment.reg_accesses_8;
  Printf.printf "spill traffic = %d loads, %d stores, %d copies\n"
    m.Experiment.spill_loads m.Experiment.spill_stores m.Experiment.copies

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let entry = Arg.(value & opt string "run" & info [ "entry" ]) in
  let args = Arg.(value & opt string "" & info [ "args" ]) in
  let train = Arg.(value & opt string "" & info [ "train" ]) in
  let why_misspec =
    Arg.(value & flag
         & info [ "why-misspec" ]
             ~doc:"Print a per-site misspeculation histogram: each \
                   misspeculation charged back to the originating \
                   variable and source line.  The total equals the \
                   simulator's misspecs counter.")
  in
  let power =
    Arg.(value & opt (some dist_conv) None
         & info [ "power" ] ~docv:"DIST"
             ~doc:"Simulate under injected power failures drawn from \
                   $(docv) ($(b,periodic:N), $(b,exp:N), $(b,hotpc:N)), \
                   with checkpoint/restore per $(b,--policy).")
  in
  let power_seed =
    Arg.(value & opt int64 1L
         & info [ "power-seed" ] ~docv:"S"
             ~doc:"Seed of the outage trace (with $(b,--power)).")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the raw activity-counter dump and the host-side \
                   simulation rate ($(b,simulated_mips), simulated \
                   instructions per host microsecond).")
  in
  let action file arch heuristic entry args train no_expander strict trace
      why power power_seed policy retries engine interp_engine stats =
    with_reporting ~file (fun () ->
        let source = read_file file in
        let config = config_of ~arch ~heuristic ~no_expander in
        let train_args =
          if train = "" then parse_args args else parse_args train
        in
        with_trace trace @@ fun () ->
        let c =
          Driver.compile ~mode:(mode_of_strict strict) ~interp_engine ~config
            ~source ~train:[ (entry, train_args) ] ()
        in
        print_diagnostics c;
        let pw =
          Option.map
            (fun dist ->
              let hot_pcs = ref [] in
              Array.iteri
                (fun pc s -> if s <> None then hot_pcs := pc :: !hot_pcs)
                c.Driver.program.Bs_backend.Asm.srcmap;
              let trace =
                Bs_sim.Powertrace.create ~seed:power_seed
                  ~hot_pcs:(List.rev !hot_pcs) dist
              in
              { Bs_sim.Machine.trace; policy; max_retries = retries })
            power
        in
        let r =
          Driver.run_machine ?power:pw ~engine c ~entry
            ~args:(parse_args args)
        in
        print_metrics (Experiment.metrics_of_run r);
        if stats then begin
          let ctr = r.Bs_sim.Machine.ctr in
          List.iter
            (fun (k, v) -> Printf.printf "%-18s = %d\n" k v)
            (Bs_sim.Counters.to_assoc ctr);
          Printf.printf "%-18s = %.2f\n" "simulated_mips"
            (Bs_sim.Counters.simulated_mips ctr)
        end;
        (match pw with
        | None -> ()
        | Some _ ->
            let ctr = r.Bs_sim.Machine.ctr in
            let b = Energy.of_result r in
            Printf.printf "outcome       = %s\n"
              (Outcome.to_string r.Bs_sim.Machine.outcome);
            Printf.printf
              "power         = %d restores, %d checkpoints (%d bytes), %d \
               re-executed instrs\n"
              ctr.Bs_sim.Counters.restores ctr.Bs_sim.Counters.checkpoints
              ctr.Bs_sim.Counters.checkpoint_bytes
              ctr.Bs_sim.Counters.reexec_instrs;
            Printf.printf
              "power energy  = %.1f checkpointing + %.1f re-execution \
               (run total %.1f)\n"
              (Energy.checkpoint_energy ctr)
              (Energy.reexec_energy b ctr)
              (Energy.total_intermittent b ctr));
        if why then
          Format.printf "%a" Experiment.pp_misspec_sites
            (Experiment.misspec_sites c r))
  in
  Cmd.v (Cmd.info "run" ~doc:"compile and simulate a MiniC file")
    Term.(const action $ file $ arch_arg $ heuristic_arg $ entry $ args
          $ train $ no_expander_arg $ strict_arg $ trace_arg $ why_misspec
          $ power $ power_seed $ policy_arg $ retries_arg $ engine_arg
          $ interp_engine_arg $ stats)

(* --- bench ------------------------------------------------------------- *)

let bench_cmd =
  let wname = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let relative = Arg.(value & flag & info [ "relative" ] ~doc:"also print values relative to BASELINE") in
  let why_misspec =
    Arg.(value & flag
         & info [ "why-misspec" ]
             ~doc:"Print a per-site misspeculation histogram for the test \
                   input: each misspeculation charged back to the \
                   originating variable and source line.")
  in
  let action wname arch heuristic no_expander relative jobs trace remarks
      why =
    with_reporting (fun () ->
        let w = Registry.find wname in
        let config = config_of ~arch ~heuristic ~no_expander in
        with_trace trace @@ fun () ->
        (* the configured run and the baseline comparison are independent;
           a pool overlaps them (printing stays sequential) *)
        let runs =
          if relative then
            Bs_exec.Pool.map ~jobs
              (fun cfg -> Experiment.run cfg w)
              [| config; Driver.baseline_config |]
          else [| Experiment.run config w |]
        in
        let m = runs.(0) in
        print_metrics m;
        let expect = Experiment.reference_checksum w in
        Printf.printf "reference     = %Ld (%s)\n" expect
          (if expect = m.Experiment.checksum then "MATCH" else "MISMATCH");
        if relative then begin
          let b = runs.(1) in
          Printf.printf "vs BASELINE   : energy %.3f, instrs %.3f, EPI %.3f\n"
            (m.Experiment.total_energy /. b.Experiment.total_energy)
            (float_of_int m.Experiment.instrs /. float_of_int b.Experiment.instrs)
            (m.Experiment.epi /. b.Experiment.epi)
        end;
        if remarks || why then begin
          (* served from the compile cache: same key as the run above *)
          let c = Experiment.compile_workload config w in
          if remarks then print_remarks c;
          if why then begin
            let r =
              Driver.run_machine
                ~setup:(w.Workload.test.Workload.setup c.Driver.ir)
                c ~entry:w.Workload.entry ~args:w.Workload.test.Workload.args
            in
            Format.printf "%a" Experiment.pp_misspec_sites
              (Experiment.misspec_sites c r)
          end
        end)
  in
  Cmd.v (Cmd.info "bench" ~doc:"run a built-in workload")
    Term.(const action $ wname $ arch_arg $ heuristic_arg $ no_expander_arg
          $ relative $ jobs_arg $ trace_arg $ remarks_arg $ why_misspec)

(* --- inject ------------------------------------------------------------ *)

let inject_cmd =
  let wname = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let trials =
    Arg.(value & opt int 100
         & info [ "trials" ] ~docv:"N" ~doc:"Number of injection trials.")
  in
  let seed =
    Arg.(value & opt int64 1L
         & info [ "seed" ] ~docv:"S"
             ~doc:"Campaign seed; a fixed seed reproduces the exact same \
                   faults and verdicts.")
  in
  let max_examples =
    Arg.(value & opt int 8
         & info [ "max-examples" ] ~docv:"K"
             ~doc:"Detected-fault examples to list.")
  in
  let model =
    Arg.(value
         & opt (enum [ ("bitflip", `Bitflip); ("power", `Power) ]) `Bitflip
         & info [ "model" ] ~docv:"MODEL"
             ~doc:"Fault model: $(b,bitflip) (single-bit soft errors, the \
                   default) or $(b,power) (power failures with \
                   checkpoint/restore; see $(b,--dist), $(b,--policy), \
                   $(b,--retries)).")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit with status 3 if any trial ends in silent data \
                   corruption (a wrong checksum).")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Register-bit flips only: print the per-bit \
                   predicted-vs-measured table (static bit-level \
                   vulnerability analysis against the measured campaign) \
                   instead of the verdict summary.  Implies \
                   $(b,--model bitflip).")
  in
  let action wname arch heuristic no_expander trials seed max_examples jobs
      model dist policy retries strict validate =
    with_reporting (fun () ->
        let w = Registry.find wname in
        let config = config_of ~arch ~heuristic ~no_expander in
        let sdc =
          match model with
          | `Power ->
              let t =
                Campaign.run_power ~jobs ~config ~policy ~retries ~dist
                  ~trials ~seed w
              in
              print_string (Campaign.power_report t);
              List.exists
                (fun (tr : Campaign.power_trial) ->
                  match tr.Campaign.pt_verdict with
                  | Campaign.P_sdc _ -> true
                  | _ -> false)
                t.Campaign.p_trials
          | `Bitflip when validate ->
              let v = Campaign.validate ~jobs ~config ~trials ~seed w in
              print_string (Campaign.validation_report v);
              Array.exists
                (fun (row : Campaign.bit_row) -> row.Campaign.v_corrupt > 0)
                v.Campaign.v_rows
          | `Bitflip ->
              let campaign = Campaign.run ~jobs ~config ~trials ~seed w in
              print_string (Campaign.report ~max_examples campaign);
              let s = Bs_sim.Faultinject.summarize campaign.Campaign.trials in
              s.Bs_sim.Faultinject.sdc > 0
        in
        if strict && sdc then exit 3)
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"run a seeded fault-injection campaign on a built-in workload"
       ~exits:
         (Cmd.Exit.info 3
            ~doc:"silent data corruption observed (with $(b,--strict))"
          :: Cmd.Exit.defaults))
    Term.(const action $ wname $ arch_arg $ heuristic_arg $ no_expander_arg
          $ trials $ seed $ max_examples $ jobs_arg $ model
          $ dist_arg ~default:(Bs_sim.Powertrace.Exponential 2000.0)
          $ policy_arg $ retries_arg $ strict $ validate)

(* --- harvest ----------------------------------------------------------- *)

let harvest_cmd =
  let wname =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let trials =
    Arg.(value & opt int 100
         & info [ "trials" ] ~docv:"N"
             ~doc:"Intermittent executions to simulate.")
  in
  let seed =
    Arg.(value & opt int64 1L
         & info [ "seed" ] ~docv:"S"
             ~doc:"Campaign seed; per-trial outage-trace seeds are drawn \
                   from it up front, so the report is byte-identical at \
                   any $(b,--jobs).")
  in
  let action wname arch heuristic no_expander trials seed dist policy retries
      jobs =
    with_reporting (fun () ->
        let w = Registry.find wname in
        let config = config_of ~arch ~heuristic ~no_expander in
        let t =
          Campaign.run_power ~jobs ~config ~policy ~retries ~dist ~trials
            ~seed w
        in
        print_string (Campaign.power_report t))
  in
  Cmd.v
    (Cmd.info "harvest"
       ~doc:"simulate a built-in workload on harvested (intermittent) \
             power: seeded outage campaigns with checkpoint/restore, \
             re-execution and energy-overhead accounting")
    Term.(const action $ wname $ arch_arg $ heuristic_arg $ no_expander_arg
          $ trials $ seed
          $ dist_arg ~default:(Bs_sim.Powertrace.Exponential 2000.0)
          $ policy_arg $ retries_arg $ jobs_arg)

(* --- fuzz -------------------------------------------------------------- *)

let fault_conv =
  let parse s =
    match Bs_fuzz.Corpus.fault_of_string s with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "bad fault %S: expected squeeze:FUNC, regalloc:FUNC or \
                 miscompile:FUNC"
                s))
  in
  let print ppf f = Format.pp_print_string ppf (Bs_fuzz.Corpus.fault_to_string f) in
  Arg.conv (parse, print)

let fault_arg =
  Arg.(value & opt (some fault_conv) None
       & info [ "fault" ] ~docv:"PASS:FUNC"
           ~doc:"Plant a compiler fault ($(b,squeeze), $(b,regalloc) or \
                 $(b,miscompile)) into every compile — the oracle's \
                 self-test.")

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"Campaign seed; equal seeds yield bit-identical campaigns.")
  in
  let trials =
    Arg.(value & opt int 200
         & info [ "trials" ] ~docv:"K" ~doc:"Number of random programs.")
  in
  let budget =
    Arg.(value & opt (some float) None
         & info [ "budget" ] ~docv:"SECS"
             ~doc:"Stop starting new trials after SECS seconds of CPU time.")
  in
  let corpus =
    Arg.(value & opt string "test/corpus"
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Directory minimized reproducers are written to.")
  in
  let size =
    Arg.(value & opt int 10
         & info [ "size" ] ~docv:"S" ~doc:"Statement budget per program.")
  in
  let no_reduce =
    Arg.(value & flag
         & info [ "no-reduce" ] ~doc:"Keep crashers as generated (faster).")
  in
  let expect_crash =
    Arg.(value & flag
         & info [ "expect-crash" ]
             ~doc:"Invert the exit status: fail when NO crash is found \
                   (planted-fault self-tests).")
  in
  let action seed trials budget corpus size no_reduce fault expect_crash jobs
      engine interp_engine =
    with_reporting (fun () ->
        let t =
          Bs_fuzz.Fuzz.run ?plant:fault ?budget ~reduce:(not no_reduce)
            ~size ~jobs ~engine ~interp_engine ~seed ~trials ()
        in
        print_string (Bs_fuzz.Fuzz.report t);
        if t.Bs_fuzz.Fuzz.crashes <> [] then begin
          let paths = Bs_fuzz.Fuzz.save_corpus ~dir:corpus t in
          List.iter (Printf.printf "wrote %s\n") paths
        end;
        let crashed = t.Bs_fuzz.Fuzz.crashes <> [] in
        if crashed <> expect_crash then exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"differential fuzzing campaign: random programs, every build \
             configuration against the reference interpreter")
    Term.(const action $ seed $ trials $ budget $ corpus $ size $ no_reduce
          $ fault_arg $ expect_crash $ jobs_arg $ engine_arg
          $ interp_engine_arg)

(* --- reduce ------------------------------------------------------------ *)

let reduce_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Only replay the oracle and print the bucket; don't \
                   reduce.  Exits non-zero if a header's recorded bucket \
                   fails to reproduce.")
  in
  let entry =
    Arg.(value & opt (some string) None
         & info [ "entry" ] ~docv:"F" ~doc:"Entry point (default: header, else f).")
  in
  let args_opt =
    Arg.(value & opt (some string) None
         & info [ "args" ] ~docv:"A,B" ~doc:"Run arguments (default: header, else 17).")
  in
  let train_opt =
    Arg.(value & opt (some string) None
         & info [ "train" ] ~docv:"A,B" ~doc:"Profiling arguments (default: header, else 17).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"OUT"
             ~doc:"Where to write the minimized reproducer (default: \
                   FILE with a .min.mc suffix).")
  in
  let action file check entry args_opt train_opt fault out engine
      interp_engine =
    with_reporting ~file (fun () ->
        let meta, source = Bs_fuzz.Corpus.load file in
        let dfl f d = match meta with Some m -> f m | None -> d in
        let entry =
          match entry with
          | Some e -> e
          | None -> dfl (fun m -> m.Bs_fuzz.Corpus.entry) "f"
        in
        let args =
          match args_opt with
          | Some s -> parse_args s
          | None -> dfl (fun m -> m.Bs_fuzz.Corpus.args) [ 17L ]
        in
        let train_args =
          match train_opt with
          | Some s -> parse_args s
          | None -> dfl (fun m -> m.Bs_fuzz.Corpus.train) [ 17L ]
        in
        let fault =
          match fault with
          | Some _ -> fault
          | None -> dfl (fun m -> m.Bs_fuzz.Corpus.fault) None
        in
        let power = dfl (fun m -> m.Bs_fuzz.Corpus.power) None in
        match power with
        | Some p ->
            (* intermittent-power reproducer: replay under the recorded
               outage trace and check the bucket; reduction preserves it *)
            let replay s =
              Bs_fuzz.Oracle.run_power ~train:[ (entry, train_args) ] ~engine
                ~source:s ~entry ~args ~power:p ()
            in
            let v = replay source in
            print_endline (Bs_fuzz.Oracle.describe_power v);
            let key =
              match v.Bs_fuzz.Oracle.p_bucket with
              | Some b -> Bs_support.Bucket.key b
              | None -> "completed"
            in
            (match meta with
            | Some m when m.Bs_fuzz.Corpus.bucket_key <> key ->
                Printf.printf "recorded bucket %s did NOT reproduce\n"
                  m.Bs_fuzz.Corpus.bucket_key;
                exit 1
            | Some _ -> print_endline "recorded bucket reproduced"
            | None -> ());
            if (not check) && v.Bs_fuzz.Oracle.p_bucket <> None then begin
              let pred s =
                match (replay s).Bs_fuzz.Oracle.p_bucket with
                | Some b -> Bs_support.Bucket.key b = key
                | None -> false
              in
              let reduced = Bs_fuzz.Reduce.run ~pred source in
              let out =
                match out with
                | Some o -> o
                | None -> Filename.remove_extension file ^ ".min.mc"
              in
              let m =
                { Bs_fuzz.Corpus.bucket_key = key; entry; args;
                  train = train_args; fault = None; power = Some p }
              in
              let path =
                Bs_fuzz.Corpus.save ~dir:(Filename.dirname out)
                  ~name:(Filename.basename out) m reduced
              in
              Printf.printf "minimized to %d lines: %s\nreplay: %s\n"
                (Bs_fuzz.Reduce.line_count reduced) path
                (Bs_fuzz.Corpus.replay_command ~file:path m)
            end
        | None ->
        let oracle s =
          Bs_fuzz.Oracle.run ?plant:fault ~train:[ (entry, train_args) ]
            ~engine ~interp_engine ~source:s ~entry ~args ()
        in
        let verdict = oracle source in
        print_endline (Bs_fuzz.Oracle.describe verdict);
        match verdict with
        | Bs_fuzz.Oracle.Agree _ | Bs_fuzz.Oracle.Skip _ ->
            (* nothing to reduce; failing to reproduce a recorded bucket
               is an error *)
            if Option.is_some meta then exit 1
        | Bs_fuzz.Oracle.Crash { bucket; _ } ->
            let key = Bs_support.Bucket.key bucket in
            (match meta with
            | Some m when m.Bs_fuzz.Corpus.bucket_key <> key ->
                Printf.printf "recorded bucket %s did NOT reproduce\n"
                  m.Bs_fuzz.Corpus.bucket_key;
                exit 1
            | Some _ -> print_endline "recorded bucket reproduced"
            | None -> ());
            if not check then begin
              let pred s =
                match oracle s with
                | Bs_fuzz.Oracle.Crash { bucket = b; _ } ->
                    Bs_support.Bucket.key b = key
                | _ -> false
              in
              let reduced = Bs_fuzz.Reduce.run ~pred source in
              let out =
                match out with
                | Some o -> o
                | None -> Filename.remove_extension file ^ ".min.mc"
              in
              let m =
                { Bs_fuzz.Corpus.bucket_key = key; entry; args;
                  train = train_args; fault; power }
              in
              let path =
                Bs_fuzz.Corpus.save ~dir:(Filename.dirname out)
                  ~name:(Filename.basename out) m reduced
              in
              Printf.printf "minimized to %d lines: %s\nreplay: %s\n"
                (Bs_fuzz.Reduce.line_count reduced) path
                (Bs_fuzz.Corpus.replay_command ~file:path m)
            end)
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"replay the differential oracle on a MiniC file and \
             delta-debug it to a minimal reproducer")
    Term.(const action $ file $ check $ entry $ args_opt $ train_opt
          $ fault_arg $ out $ engine_arg $ interp_engine_arg)

(* --- serve / client / loadgen ------------------------------------------ *)

let socket_doc = "Unix-domain socket $(docv) of the compile server."

let socket_req_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:socket_doc)

let socket_opt_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:(socket_doc ^ "  Without it, $(b,serve) speaks the same \
                  newline-delimited JSON over stdin/stdout."))

let unix_fail path f =
  try f ()
  with Unix.Unix_error (e, _, _) ->
    failwith (path ^ ": " ^ Unix.error_message e)

let serve_cmd =
  let queue_depth =
    Arg.(value & opt int Server.default_config.Server.queue_depth
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission high-water mark: requests beyond $(docv) \
                   queued are shed with a structured $(b,overloaded) \
                   response instead of queueing without bound.")
  in
  let deadline =
    Arg.(value & opt int Server.default_config.Server.deadline_ms
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline (0 = none); the watchdog \
                   answers $(b,timeout) for any request that overruns it, \
                   even if the worker is wedged.")
  in
  let fuel =
    Arg.(value & opt int Server.default_config.Server.fuel
         & info [ "fuel" ] ~docv:"N"
             ~doc:"Default simulation instruction budget per request.")
  in
  let retries =
    Arg.(value & opt int Server.default_config.Server.retries
         & info [ "retries" ] ~docv:"N"
             ~doc:"Re-executions of a transiently-failed request, with \
                   exponential backoff and seeded jitter.")
  in
  let backoff_base =
    Arg.(value & opt float Server.default_config.Server.backoff_base_ms
         & info [ "backoff-base-ms" ] ~docv:"MS")
  in
  let backoff_cap =
    Arg.(value & opt float Server.default_config.Server.backoff_cap_ms
         & info [ "backoff-cap-ms" ] ~docv:"MS")
  in
  let seed =
    Arg.(value & opt int64 Server.default_config.Server.seed
         & info [ "seed" ] ~docv:"S"
             ~doc:"Backoff-jitter seed; retry schedules are a pure \
                   function of (seed, request id, attempt).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist compiled workloads to a crash-safe \
                   content-addressed store under $(docv); a restarted \
                   server serves them back without recompiling.  Corrupt \
                   entries are quarantined and recompiled, never trusted.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write a Prometheus text exposition of the metrics \
                   registry to $(docv) on shutdown, and again on every \
                   SIGUSR1 (with a log line on stderr) while serving.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record request-scoped spans and flow events while \
                   serving and write Chrome trace-event JSON to $(docv) \
                   on shutdown.  The span buffer is bounded; overflow is \
                   counted in the $(b,trace_dropped_events) metric.")
  in
  let action socket jobs queue_depth deadline_ms fuel retries backoff_base_ms
      backoff_cap_ms seed cache_dir interp_engine metrics_out trace_out =
    with_reporting (fun () ->
        let cfg =
          { Server.jobs; queue_depth; deadline_ms; fuel; retries;
            backoff_base_ms; backoff_cap_ms; seed; cache_dir; interp_engine }
        in
        let write_metrics path =
          let oc = open_out path in
          output_string oc (Bs_obs.Metrics.prometheus ());
          close_out oc
        in
        (match metrics_out with
        | Some path ->
            ignore
              (Sys.signal Sys.sigusr1
                 (Sys.Signal_handle
                    (fun _ ->
                      write_metrics path;
                      Printf.eprintf "bitspecc: metrics snapshot -> %s\n%!"
                        path)))
        | None -> ());
        if Option.is_some trace_out then Bs_obs.Trace.enable ();
        let t = Server.start cfg in
        let finish () =
          (match metrics_out with
          | Some path -> write_metrics path
          | None -> ());
          match trace_out with
          | Some path ->
              Bs_obs.Trace.disable ();
              Bs_obs.Trace.write_chrome path
          | None -> ()
        in
        Fun.protect ~finally:finish (fun () ->
            match socket with
            | Some path ->
                unix_fail path (fun () ->
                    Server.serve_unix t ~socket:path
                      ~on_ready:(fun () ->
                        Printf.eprintf
                          "bitspecc: serving on %s (%d workers)\n%!"
                          path jobs)
                      ())
            | None -> Server.serve_stdio t ()))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"run the compile service: a supervised worker pool with a \
             persistent compile cache, per-request deadlines, seeded \
             retry/backoff and bounded-queue load shedding")
    Term.(const action $ socket_opt_arg $ jobs_arg $ queue_depth
          $ deadline $ fuel $ retries $ backoff_base $ backoff_cap $ seed
          $ cache_dir $ interp_engine_arg $ metrics_out $ trace_out)

let chaos_conv =
  let parse s =
    match Service.chaos_of_string s with
    | Some c -> Ok c
    | None ->
        Error (`Msg (Printf.sprintf "bad chaos %S: expected crash:N or hang:MS" s))
  in
  let print ppf c = Format.pp_print_string ppf (Service.chaos_to_string c) in
  Arg.conv (parse, print)

let client_cmd =
  let op =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OP"
             ~doc:"$(b,ping), $(b,stats), $(b,health), $(b,shutdown) or \
                   $(b,bench) (which takes a WORKLOAD).")
  in
  let wname =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let id = Arg.(value & opt int 1 & info [ "id" ] ~docv:"N") in
  let deadline =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Override the server's default deadline.")
  in
  let fuel = Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N") in
  let chaos =
    Arg.(value & opt (some chaos_conv) None
         & info [ "chaos" ] ~docv:"KNOB"
             ~doc:"Inject worker misbehaviour: $(b,crash:N) (fail \
                   attempts below N) or $(b,hang:MS) (wedge the worker).")
  in
  let action socket op wname arch heuristic no_expander id deadline fuel
      chaos =
    with_reporting (fun () ->
        let rq_op =
          match op with
          | "ping" -> Service.Ping
          | "stats" -> Service.Stats
          | "health" -> Service.Health
          | "shutdown" -> Service.Shutdown
          | "bench" -> (
              match wname with
              | Some w ->
                  Service.Bench
                    { Service.b_workload = w; b_arch = arch;
                      b_heuristic = heuristic; b_no_expander = no_expander }
              | None -> failwith "bench needs a WORKLOAD argument")
          | s -> failwith (Printf.sprintf "unknown op %S" s)
        in
        let rq =
          { Service.rq_id = id; rq_op; rq_deadline_ms = deadline;
            rq_fuel = fuel; rq_chaos = chaos }
        in
        let conn = unix_fail socket (fun () -> Server.connect ~socket) in
        let rs =
          Fun.protect ~finally:(fun () -> Server.close conn) (fun () ->
              Server.call conn rq)
        in
        print_endline (Service.response_line rs);
        match rs.Service.rs_status with
        | Service.Done _ | Service.Pong | Service.Stats_reply _
        | Service.Health_reply _ | Service.Bye -> ()
        | Service.Failed _ -> exit 1
        | Service.Overloaded _ -> exit 4
        | Service.Timed_out -> exit 5)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"send one request to a running compile server"
       ~exits:
         (Cmd.Exit.info 4 ~doc:"the server shed the request (overloaded)"
          :: Cmd.Exit.info 5 ~doc:"the request's deadline passed (timeout)"
          :: Cmd.Exit.defaults))
    Term.(const action $ socket_req_arg $ op $ wname $ arch_arg
          $ heuristic_arg $ no_expander_arg $ id $ deadline $ fuel $ chaos)

let loadgen_cmd =
  let seed =
    Arg.(value & opt int64 Loadgen.default_cfg.Loadgen.lg_seed
         & info [ "seed" ] ~docv:"S"
             ~doc:"Stream seed; equal seeds produce the identical \
                   request sequence whatever $(b,--clients).")
  in
  let requests =
    Arg.(value & opt int Loadgen.default_cfg.Loadgen.lg_requests
         & info [ "requests" ] ~docv:"N")
  in
  let clients =
    Arg.(value & opt int Loadgen.default_cfg.Loadgen.lg_clients
         & info [ "clients" ] ~docv:"N"
             ~doc:"Closed-loop client threads (each on its own \
                   connection).")
  in
  let zipf =
    Arg.(value & opt float Loadgen.default_cfg.Loadgen.lg_zipf_s
         & info [ "zipf" ] ~docv:"S"
             ~doc:"Zipf exponent of the workload/config popularity \
                   distribution.")
  in
  let deadline =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS")
  in
  let fuel = Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N") in
  let crash_every =
    Arg.(value & opt int 0
         & info [ "crash-every" ] ~docv:"N"
             ~doc:"Inject a $(b,crash:2) chaos knob on every $(docv)-th \
                   request (0 = never) to exercise the retry path.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the machine-readable summary JSON to $(docv).")
  in
  let log =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:"Write the canonical per-request log (sorted by id; \
                   byte-identical at any server $(b,--jobs)) to $(docv).")
  in
  let check_server =
    Arg.(value & flag
         & info [ "check-server" ]
             ~doc:"After the run, fetch the server's stats snapshot and \
                   reconcile its latency histogram against the \
                   client-side measurements: counts must match exactly, \
                   p50/p99 within one histogram bucket.  $(b,--out) then \
                   records client view, server view and the verdict.  \
                   Only sound against a server that has served exactly \
                   this run's requests.  Exits nonzero on mismatch.")
  in
  let action socket seed requests clients zipf deadline fuel crash_every out
      log check_server =
    with_reporting (fun () ->
        let cfg =
          { Loadgen.lg_seed = seed; lg_requests = requests;
            lg_clients = clients; lg_zipf_s = zipf;
            lg_deadline_ms = deadline; lg_fuel = fuel;
            lg_crash_every = crash_every }
        in
        let pairs, s =
          unix_fail socket (fun () ->
              Loadgen.run cfg (Loadgen.Connect socket))
        in
        Printf.printf "requests       = %d (%d clients, zipf %.2f, seed %Ld)\n"
          s.Loadgen.sm_requests clients zipf seed;
        Printf.printf "ok/err/timeout = %d / %d / %d   shed = %d\n"
          s.Loadgen.sm_ok s.Loadgen.sm_errors s.Loadgen.sm_timeouts
          s.Loadgen.sm_shed;
        Printf.printf "retries        = %d\n" s.Loadgen.sm_retries;
        Printf.printf "throughput     = %.1f req/s (%.2f s wall)\n"
          s.Loadgen.sm_rps s.Loadgen.sm_wall_s;
        Printf.printf "p50 / p99      = %.2f / %.2f ms\n" s.Loadgen.sm_p50_ms
          s.Loadgen.sm_p99_ms;
        Printf.printf "cache hit rate = %.3f\n" s.Loadgen.sm_hit_rate;
        Printf.printf "shed rate      = %.3f\n" s.Loadgen.sm_shed_rate;
        let check =
          if not check_server then None
          else
            match Loadgen.server_stats (Loadgen.Connect socket) with
            | None -> failwith "cross-check: could not fetch server stats"
            | Some st ->
                let c = Loadgen.cross_check pairs st in
                Printf.printf
                  "server count   = %d (client %d) %s\n"
                  c.Loadgen.cc_server_count c.Loadgen.cc_client_count
                  (if c.Loadgen.cc_count_ok then "[exact]" else "[MISMATCH]");
                Printf.printf
                  "server p50/p99 = %.2f / %.2f ms (client %.2f / %.2f) %s\n"
                  c.Loadgen.cc_server_p50 c.Loadgen.cc_server_p99
                  c.Loadgen.cc_client_p50 c.Loadgen.cc_client_p99
                  (if c.Loadgen.cc_p50_ok && c.Loadgen.cc_p99_ok then
                     "[within bucket]"
                   else "[MISMATCH]");
                Some (st, c)
        in
        (match out with
        | Some path ->
            let payload =
              match check with
              | None -> Loadgen.summary_json s
              | Some (st, c) ->
                  Jsonx.Obj
                    [ ("client", Loadgen.summary_json s);
                      ("server", Service.stats_to_json st);
                      ("cross_check", Loadgen.check_json c) ]
            in
            let oc = open_out path in
            output_string oc (Jsonx.to_string payload);
            output_char oc '\n';
            close_out oc;
            Printf.printf "summary written to %s\n" path
        | None -> ());
        (match check with
        | Some (_, c) when not c.Loadgen.cc_ok ->
            failwith "cross-check: server and client views disagree"
        | _ -> ());
        match log with
        | Some path ->
            let oc = open_out path in
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              (Loadgen.canonical_log pairs);
            close_out oc;
            Printf.printf "canonical log written to %s\n" path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"drive a running compile server with a seeded zipfian \
             closed-loop load and report throughput, latency \
             percentiles, cache hit rate and shed rate")
    Term.(const action $ socket_req_arg $ seed $ requests
          $ clients $ zipf $ deadline $ fuel $ crash_every $ out $ log
          $ check_server)

(* --- list -------------------------------------------------------------- *)

let list_cmd =
  let action () =
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "%-18s %s\n" w.name w.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"list built-in workloads") Term.(const action $ const ())

let () =
  let doc = "the BITSPEC compiler and architecture simulator" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "bitspecc" ~doc)
          [ compile_cmd; run_cmd; bench_cmd; inject_cmd; harvest_cmd;
            fuzz_cmd; reduce_cmd; serve_cmd; client_cmd; loadgen_cmd;
            list_cmd ]))
