(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (§4).  Each section prints the same rows/series the
   paper reports, computed from the activity counters of the simulated
   machine.

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe fig8 table2      # selected sections
     dune exec bench/main.exe -- --jobs 4      # size of the domain pool

   Every experiment is computed through process-wide memo tables (and all
   compilations through the content-addressed {!Compile_cache}), so the
   printed bytes are identical whatever the job count: the pool only
   pre-fills the tables before each section prints in its usual order.
   A machine-readable run summary lands in BENCH_pr9.json: per-section
   wall-clock and compile-cache hits/misses (including a synthetic
   [warm] section for the report phase, so the section deltas sum
   exactly to the global counters), a compiler phase-time breakdown
   (from the {!Bs_obs.Trace} spans), per-workload misspeculation-site
   histograms with aggregate activity counters, and the host execution
   rates of both back ends: [simulated_mips] (machine simulator) and
   [interp_mips] (IR interpreter, compiled engine).

   Absolute energy is in model units; every figure reports values relative
   to BASELINE exactly as the paper does.  EXPERIMENTS.md records the
   paper-vs-measured comparison per section. *)

open Bitspec
open Bs_workloads
open Bs_interp
open Bs_energy

let benches = Registry.all

(* ---------------------------------------------------------------------- *)
(* Parallel pre-fill and cached experiment runs                            *)
(* ---------------------------------------------------------------------- *)

let jobs = ref (Bs_exec.Pool.default_jobs ())

let cache : (string, Experiment.metrics) Bs_exec.Memo.t =
  Bs_exec.Memo.create ()

let run_cached ?profile_input ?tag config (w : Workload.t) =
  let key =
    Driver.config_tag config ^ "/" ^ w.name
    ^ match tag with Some t -> "#" ^ t | None -> ""
  in
  Bs_exec.Memo.find_or_add cache key (fun () ->
      Experiment.run ?profile_input ?profile_tag:tag config w)

let baseline w = run_cached Driver.baseline_config w
let bitspec w = run_cached Driver.bitspec_config w

(* [warm cells] fans the section's independent units of work out over the
   domain pool; the section body then prints from the hot memo tables. *)
let warm cells =
  Bs_exec.Pool.run_all ~jobs:!jobs (Array.of_list cells)

let ig f () = ignore (f ())

(* Memoised row strings, for sections whose unit of work is a whole
   custom-computed row rather than a [run_cached] cell. *)
let rows : (string, string) Bs_exec.Memo.t = Bs_exec.Memo.create ()
let row key f = Bs_exec.Memo.find_or_add rows key f

let rel a b = if b = 0.0 then 1.0 else a /. b
let reli a b = rel (float_of_int a) (float_of_int b)

let header title = Printf.printf "\n=== %s ===\n%!" title

let row_header cols =
  Printf.printf "%-18s" "benchmark";
  List.iter (fun c -> Printf.printf " %12s" c) cols;
  print_newline ()

(* ---------------------------------------------------------------------- *)
(* Figure 1: bitwidth selection techniques                                  *)
(* ---------------------------------------------------------------------- *)

let profile1_tbl = Bs_exec.Memo.create ()

let profile_for_fig1 (w : Workload.t) =
  (* IR-level study: profile the expanded module on the test input.
     Memoised — fig1 and fig5 share the same profiling run. *)
  Bs_exec.Memo.find_or_add profile1_tbl w.name (fun () ->
      let m = Bs_frontend.Lower.compile w.source in
      ignore (Expander.run m Expander.default);
      let profile = Profile.create () in
      let opts = { Interp.default_opts with profile = Some profile } in
      ignore
        (Interp.run_fresh ~opts ~setup:(w.test.Workload.setup m) m
           ~entry:w.entry ~args:w.test.Workload.args);
      (m, profile))

let print_dist name (d : float array) =
  if Array.length d = 4 then
    Printf.printf "%-20s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n%!" name
      (100. *. d.(0)) (100. *. d.(1)) (100. *. d.(2)) (100. *. d.(3))

let fig1 () =
  warm (List.map (fun w -> ig (fun () -> profile_for_fig1 w)) benches);
  header "Figure 1: dynamic IR integer instructions by bitwidth selection";
  List.iter
    (fun (w : Workload.t) ->
      let m, profile = profile_for_fig1 w in
      Printf.printf "-- %s (columns: 8 / 16 / 32 / 64 bits)\n" w.name;
      print_dist "  (a) required" (Profile.required_distribution profile);
      print_dist "  (b) programmer" (Profile.programmer_distribution profile);
      let db = Bs_analysis.Demanded_bits.module_selection m in
      print_dist "  (c) demanded-bits"
        (Profile.selection_distribution profile ~select:db);
      let bc = Bs_analysis.Block_coerce.selection m profile in
      print_dist "  (d) block-coerced"
        (Profile.selection_distribution profile ~select:bc))
    benches

(* ---------------------------------------------------------------------- *)
(* Figure 3: loop unrolling IR vs assembly instructions                     *)
(* ---------------------------------------------------------------------- *)

let fig3_src =
    (* eight live accumulators with cross-dependencies: unrolled copies
       multiply the simultaneously-live temporaries, pressuring the
       register file exactly as §2.5 describes *)
    "u32 acc[64];\n\
     u32 f(u32 n) {\n\
     u32 s0 = 0; u32 s1 = 1; u32 s2 = 2; u32 s3 = 3;\n\
     u32 s4 = 4; u32 s5 = 5; u32 s6 = 6; u32 s7 = 7;\n\
     u32 s8 = 8; u32 s9 = 9; u32 sa = 10; u32 sb = 11;\n\
     for (u32 i = 0; i < n; i += 1) {\n\
     u32 t = acc[i & 63];\n\
     s0 = (s0 + t) & 0xFFFF; s1 = (s1 ^ s0) + i; s2 = (s2 + s1) & 0xFFFF;\n\
     s3 = s3 ^ (s2 >> 1); s4 = (s4 + s3) & 0xFFFF; s5 = s5 ^ (s4 + t);\n\
     s6 = (s6 + s5) & 0xFFFF; s7 = s7 ^ (s6 + i); s8 = (s8 + s7) & 0xFFFF;\n\
     s9 = s9 ^ (s8 + t); sa = (sa + s9) & 0xFFFF; sb = sb ^ (sa >> 2);\n\
     acc[i & 63] = sb;\n\
     }\n\
     return s0 ^ s1 ^ s2 ^ s3 ^ s4 ^ s5 ^ s6 ^ s7 ^ s8 ^ s9 ^ sa ^ sb; }"

let fig3_factors = [ 1; 2; 4; 8; 16 ]

let fig3_row factor =
  row (Printf.sprintf "fig3/u%d" factor) (fun () ->
      let expander =
        { Expander.unroll_factor = factor; max_fn_size = 2000;
          max_loop_size = 3000 }
      in
      let m = Bs_frontend.Lower.compile fig3_src in
      ignore (Expander.run m expander);
      let r, _ = Interp.run_fresh m ~entry:"f" ~args:[ 3000L ] in
      let cfg = { Driver.baseline_config with expander } in
      let c =
        Compile_cache.compile
          ~key:
            (Printf.sprintf "fig3|%s|%s|f@100"
               (Compile_cache.source_key fig3_src)
               (Driver.config_tag cfg))
          (fun () ->
            Driver.compile ~config:cfg ~source:fig3_src
              ~train:[ ("f", [ 100L ]) ] ())
      in
      let mr = Driver.run_machine c ~entry:"f" ~args:[ 3000L ] in
      Printf.sprintf "%-8d %14d %14d\n" factor r.Interp.steps
        mr.Bs_sim.Machine.ctr.Bs_sim.Counters.instrs)

let fig3 () =
  warm (List.map (fun f -> ig (fun () -> fig3_row f)) fig3_factors);
  header "Figure 3: unrolling factor vs dynamic IR and assembly instructions";
  Printf.printf "%-8s %14s %14s\n" "factor" "IR instrs" "asm instrs";
  List.iter (fun f -> Printf.printf "%s%!" (fig3_row f)) fig3_factors

(* ---------------------------------------------------------------------- *)
(* Figure 5: profiler classification under T = MAX / AVG / MIN              *)
(* ---------------------------------------------------------------------- *)

let fig5 () =
  warm (List.map (fun w -> ig (fun () -> profile_for_fig1 w)) benches);
  header "Figure 5: profiler bitwidth classes under each heuristic";
  List.iter
    (fun (w : Workload.t) ->
      let _, profile = profile_for_fig1 w in
      Printf.printf "-- %s (columns: 8 / 16 / 32 / 64 bits)\n" w.name;
      List.iter
        (fun h ->
          print_dist
            ("  T=" ^ Profile.heuristic_name h)
            (Profile.heuristic_distribution profile h))
        [ Profile.Hmax; Profile.Havg; Profile.Hmin ])
    benches

(* ---------------------------------------------------------------------- *)
(* Figure 8: energy, dynamic instructions, EPI                              *)
(* ---------------------------------------------------------------------- *)

let warm_base_spec () =
  warm
    (List.concat_map
       (fun w -> [ ig (fun () -> baseline w); ig (fun () -> bitspec w) ])
       benches)

let fig8 () =
  warm_base_spec ();
  header "Figure 8: BITSPEC relative to BASELINE";
  row_header [ "energy"; "dyn instrs"; "EPI" ];
  let gm_e = ref 0.0 and n = ref 0 in
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w and s = bitspec w in
      let e = rel s.Experiment.total_energy b.Experiment.total_energy in
      gm_e := !gm_e +. log e;
      incr n;
      Printf.printf "%-18s %12.3f %12.3f %12.3f\n%!" w.name e
        (reli s.Experiment.instrs b.Experiment.instrs)
        (rel s.Experiment.epi b.Experiment.epi))
    benches;
  Printf.printf "%-18s %12.3f   (geometric mean; paper reports 0.901)\n"
    "MEAN energy"
    (exp (!gm_e /. float_of_int !n))

(* ---------------------------------------------------------------------- *)
(* Figure 9: per-component energy                                           *)
(* ---------------------------------------------------------------------- *)

let fig9 () =
  warm_base_spec ();
  header "Figure 9: per-component energy relative to the BASELINE component";
  row_header [ "ALU"; "regfile"; "D$"; "I$"; "pipeline" ];
  List.iter
    (fun (w : Workload.t) ->
      let b = (baseline w).Experiment.energy
      and s = (bitspec w).Experiment.energy in
      Printf.printf "%-18s %12.3f %12.3f %12.3f %12.3f %12.3f\n%!" w.name
        (rel s.Energy.alu b.Energy.alu)
        (rel s.Energy.regfile b.Energy.regfile)
        (rel s.Energy.dcache b.Energy.dcache)
        (rel s.Energy.icache b.Energy.icache)
        (rel s.Energy.pipeline b.Energy.pipeline))
    benches

(* ---------------------------------------------------------------------- *)
(* Figure 10: register-allocator traffic                                    *)
(* ---------------------------------------------------------------------- *)

let fig10 () =
  warm_base_spec ();
  header
    "Figure 10: spill loads / stores / copies (normalised to their BASELINE \
     sum)";
  row_header [ "loads"; "stores"; "copies"; "total" ];
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w and s = bitspec w in
      let base_sum =
        float_of_int
          (b.Experiment.spill_loads + b.Experiment.spill_stores
         + b.Experiment.copies)
      in
      let base_sum = if base_sum = 0.0 then 1.0 else base_sum in
      let f x = float_of_int x /. base_sum in
      Printf.printf "%-18s %12.3f %12.3f %12.3f %12.3f\n%!" w.name
        (f s.Experiment.spill_loads)
        (f s.Experiment.spill_stores)
        (f s.Experiment.copies)
        (f
           (s.Experiment.spill_loads + s.Experiment.spill_stores
          + s.Experiment.copies)))
    benches

(* ---------------------------------------------------------------------- *)
(* Figure 11: dynamic register accesses at 8 and 32 bits                    *)
(* ---------------------------------------------------------------------- *)

let fig11 () =
  warm_base_spec ();
  header "Figure 11: register accesses relative to BASELINE (all 32-bit there)";
  row_header [ "32-bit"; "8-bit"; "total" ];
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w and s = bitspec w in
      let base = float_of_int b.Experiment.reg_accesses_32 in
      Printf.printf "%-18s %12.3f %12.3f %12.3f\n%!" w.name
        (float_of_int s.Experiment.reg_accesses_32 /. base)
        (float_of_int s.Experiment.reg_accesses_8 /. base)
        (float_of_int
           (s.Experiment.reg_accesses_32 + s.Experiment.reg_accesses_8)
        /. base))
    benches

(* ---------------------------------------------------------------------- *)
(* Figure 12 (RQ2): register packing without speculation                    *)
(* ---------------------------------------------------------------------- *)

let fig12 () =
  let nospec_cfg = { Driver.bitspec_config with speculate = false } in
  warm
    (List.concat_map
       (fun w ->
         [ ig (fun () -> baseline w); ig (fun () -> run_cached nospec_cfg w);
           ig (fun () -> bitspec w) ])
       benches);
  header "Figure 12: energy without speculation vs BITSPEC (both vs BASELINE)";
  row_header [ "no-spec"; "bitspec" ];
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w in
      let ns = run_cached nospec_cfg w in
      let s = bitspec w in
      Printf.printf "%-18s %12.3f %12.3f\n%!" w.name
        (rel ns.Experiment.total_energy b.Experiment.total_energy)
        (rel s.Experiment.total_energy b.Experiment.total_energy))
    benches

(* ---------------------------------------------------------------------- *)
(* RQ3: optimisation ablations                                              *)
(* ---------------------------------------------------------------------- *)

let rq3_benches = [ "dijkstra"; "blowfish"; "rijndael"; "CRC32" ]

let rq3 () =
  let no_ce = { Driver.bitspec_config with compare_elim = false } in
  let no_bm = { Driver.bitspec_config with bitmask_elide = false } in
  warm
    (List.concat_map
       (fun name ->
         let w = Registry.find name in
         [ ig (fun () -> baseline w); ig (fun () -> bitspec w);
           ig (fun () -> run_cached no_ce w);
           ig (fun () -> run_cached no_bm w) ])
       rq3_benches);
  header "RQ3: BITSPEC-specific optimisation ablations (energy vs BASELINE)";
  row_header [ "full"; "-cmp-elim"; "-bitmask" ];
  List.iter
    (fun name ->
      let w = Registry.find name in
      let b = baseline w in
      let full = bitspec w in
      let a = run_cached no_ce w and c = run_cached no_bm w in
      Printf.printf "%-18s %12.3f %12.3f %12.3f\n%!" w.name
        (rel full.Experiment.total_energy b.Experiment.total_energy)
        (rel a.Experiment.total_energy b.Experiment.total_energy)
        (rel c.Experiment.total_energy b.Experiment.total_energy))
    rq3_benches

(* ---------------------------------------------------------------------- *)
(* Figure 13 (RQ4): expander disabled                                       *)
(* ---------------------------------------------------------------------- *)

let fig13 () =
  let noexp = Expander.disabled in
  let base_noexp = { Driver.baseline_config with expander = noexp } in
  let spec_noexp = { Driver.bitspec_config with expander = noexp } in
  warm
    (List.concat_map
       (fun w ->
         [ ig (fun () -> baseline w);
           ig (fun () -> run_cached base_noexp w);
           ig (fun () -> run_cached spec_noexp w) ])
       benches);
  header "Figure 13: expander disabled (relative to BASELINE with expander)";
  row_header [ "base-noexp E"; "spec-noexp E"; "spec-noexp EPI" ];
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w in
      let bn = run_cached base_noexp w in
      let sn = run_cached spec_noexp w in
      Printf.printf "%-18s %12.3f %12.3f %12.3f\n%!" w.name
        (rel bn.Experiment.total_energy b.Experiment.total_energy)
        (rel sn.Experiment.total_energy b.Experiment.total_energy)
        (rel sn.Experiment.epi b.Experiment.epi))
    benches

(* ---------------------------------------------------------------------- *)
(* Figure 14 + Table 2: heuristic aggressiveness                            *)
(* ---------------------------------------------------------------------- *)

let heuristic_cfg h = { Driver.bitspec_config with heuristic = h }

let warm_heuristics ?(with_baseline = false) () =
  warm
    (List.concat_map
       (fun w ->
         (if with_baseline then [ ig (fun () -> baseline w) ] else [])
         @ List.map
             (fun h -> ig (fun () -> run_cached (heuristic_cfg h) w))
             [ Profile.Hmax; Profile.Havg; Profile.Hmin ])
       benches)

let fig14 () =
  warm_heuristics ~with_baseline:true ();
  header "Figure 14: energy per selection heuristic (vs BASELINE)";
  row_header [ "MAX"; "AVG"; "MIN" ];
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w in
      let e h =
        rel
          (run_cached (heuristic_cfg h) w).Experiment.total_energy
          b.Experiment.total_energy
      in
      Printf.printf "%-18s %12.3f %12.3f %12.3f\n%!" w.name (e Profile.Hmax)
        (e Profile.Havg) (e Profile.Hmin))
    benches

let table2 () =
  warm_heuristics ();
  header "Table 2: misspeculation counts per heuristic";
  row_header [ "MAX"; "AVG"; "MIN" ];
  List.iter
    (fun (w : Workload.t) ->
      let mi h = (run_cached (heuristic_cfg h) w).Experiment.misspecs in
      Printf.printf "%-18s %12d %12d %12d\n%!" w.name (mi Profile.Hmax)
        (mi Profile.Havg) (mi Profile.Hmin))
    benches

(* ---------------------------------------------------------------------- *)
(* RQ5 deep dive: CFG_orig code quality under MIN                           *)
(* ---------------------------------------------------------------------- *)

let rq5 () =
  let min_cfg = { Driver.bitspec_config with heuristic = Profile.Hmin } in
  let min_inv = { min_cfg with orig_first = true } in
  warm
    (List.concat_map
       (fun w ->
         [ ig (fun () -> baseline w); ig (fun () -> run_cached min_cfg w);
           ig (fun () -> run_cached min_inv w) ])
       benches);
  header
    "RQ5: MIN-heuristic dynamic instructions vs BASELINE, with the default \
     allocator weights (handlers never entered) vs inverted (CFG_orig \
     first)";
  row_header [ "MIN default"; "MIN orig-1st"; "misspecs" ];
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w in
      let d = run_cached min_cfg w in
      let i = run_cached min_inv w in
      Printf.printf "%-18s %12.3f %12.3f %12d\n%!" w.name
        (reli d.Experiment.instrs b.Experiment.instrs)
        (reli i.Experiment.instrs b.Experiment.instrs)
        d.Experiment.misspecs)
    benches

(* ---------------------------------------------------------------------- *)
(* Autotuning the expander (§3.2.1's offline search)                        *)
(* ---------------------------------------------------------------------- *)

let tune_benches = [ "CRC32"; "bitcount"; "sha" ]

let tune_row name =
  row ("tune/" ^ name) (fun () ->
      let w = Registry.find name in
      let compile () = Bs_frontend.Lower.compile w.Workload.source in
      let measure m =
        let r, _ =
          Interp.run_fresh ~setup:(w.Workload.train.Workload.setup m) m
            ~entry:w.entry ~args:w.Workload.train.Workload.args
        in
        r.Interp.steps
      in
      let best = Expander.autotune ~compile ~measure in
      let m = compile () in
      ignore (Expander.run m best);
      Printf.sprintf "%-18s %8d %10d %10d %14d\n" w.name
        best.Expander.unroll_factor best.Expander.max_fn_size
        best.Expander.max_loop_size (measure m))

let tune () =
  warm (List.map (fun n -> ig (fun () -> tune_row n)) tune_benches);
  header
    "Expander autotuning: grid search minimising BASELINE dynamic IR \
     instructions (the paper's 10-day OpenTuner run, reduced to a grid)";
  Printf.printf "%-18s %8s %10s %10s %14s\n" "benchmark" "unroll" "max-fn"
    "max-loop" "IR instrs";
  List.iter (fun n -> Printf.printf "%s%!" (tune_row n)) tune_benches

(* ---------------------------------------------------------------------- *)
(* Figure 15 (RQ6): alternate profiling input                               *)
(* ---------------------------------------------------------------------- *)

let fig15 () =
  warm
    (List.concat_map
       (fun (w : Workload.t) ->
         [ ig (fun () -> baseline w); ig (fun () -> bitspec w);
           ig (fun () ->
               run_cached ~profile_input:w.alt ~tag:"altprof"
                 Driver.bitspec_config w) ])
       benches);
  header "Figure 15: profiling on the alternate input (energy vs BASELINE)";
  row_header [ "train-prof"; "alt-prof" ];
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w in
      let s = bitspec w in
      let alt =
        run_cached ~profile_input:w.alt ~tag:"altprof" Driver.bitspec_config w
      in
      Printf.printf "%-18s %12.3f %12.3f\n%!" w.name
        (rel s.Experiment.total_energy b.Experiment.total_energy)
        (rel alt.Experiment.total_energy b.Experiment.total_energy))
    benches

(* ---------------------------------------------------------------------- *)
(* Figure 16 (RQ6 deep dive): susan-edges image-pair study                  *)
(* ---------------------------------------------------------------------- *)

let fig16_row h =
  row ("fig16/" ^ Profile.heuristic_name h) (fun () ->
      let w = Registry.find "susan-edges" in
      let n_images = 8 in
      let image i =
        Susan.gen_input
          ~seed:(Int64.of_int (900 + i))
          ~range:(100 + (18 * i))
          ~threshold:20
      in
      let cfg = heuristic_cfg h in
      (* compile once per profile image (tagged, so the cache can address
         the anonymous image closures); measure each on every run image *)
      let compiled =
        Array.init n_images (fun i ->
            Experiment.compile_workload ~profile_input:(image i)
              ~profile_tag:(Printf.sprintf "fig16-img%d" i) cfg w)
      in
      (* one run per (profile, run) pair; the diagonal doubles as the
         self-profiled reference, so nothing is simulated twice *)
      let instrs =
        Array.init n_images (fun i ->
            Array.init n_images (fun j ->
                (Experiment.run_compiled compiled.(i) w ~input:(image j))
                  .Experiment.instrs))
      in
      let self_instrs = Array.init n_images (fun j -> instrs.(j).(j)) in
      let ratios = ref [] in
      for i = 0 to n_images - 1 do
        for j = 0 to n_images - 1 do
          ratios :=
            (float_of_int instrs.(i).(j) /. float_of_int self_instrs.(j))
            :: !ratios
        done
      done;
      let arr = Array.of_list (List.sort compare !ratios) in
      let n = Array.length arr in
      let pct p = arr.(min (n - 1) (int_of_float (p *. float_of_int n))) in
      let over =
        Array.fold_left (fun acc r -> if r > 1.05 then acc + 1 else acc) 0 arr
      in
      Printf.sprintf "%-6s %12.3f %12.3f %12.3f %11.1f%%\n"
        (Profile.heuristic_name h) (pct 0.5) (pct 0.9)
        arr.(n - 1)
        (100.0 *. float_of_int over /. float_of_int n))

let fig16 () =
  let hs = [ Profile.Hmax; Profile.Havg; Profile.Hmin ] in
  warm (List.map (fun h -> ig (fun () -> fig16_row h)) hs);
  header
    "Figure 16: susan-edges profile/run image pairs — dynamic instructions \
     relative to self-profiled (CDF summary; paper uses 50 BSDS500 images, \
     we use 8 synthetic textures)";
  Printf.printf "%-6s %12s %12s %12s %12s\n" "T" "p50" "p90" "max" ">1.05";
  List.iter (fun h -> Printf.printf "%s%!" (fig16_row h)) hs

(* ---------------------------------------------------------------------- *)
(* RQ7: fully automatic bitwidth selection                                  *)
(* ---------------------------------------------------------------------- *)

let rq7_benches = [ "dijkstra"; "stringsearch" ]

let rq7 () =
  warm
    (List.concat_map
       (fun name ->
         let w = Registry.find name in
         match w.Workload.narrow_source with
         | None -> []
         | Some narrow ->
             let narrow_w = { w with Workload.source = narrow } in
             [ ig (fun () ->
                   run_cached ~tag:"narrow" Driver.baseline_config narrow_w);
               ig (fun () -> baseline w); ig (fun () -> bitspec w);
               ig (fun () ->
                   run_cached ~tag:"narrow" Driver.bitspec_config narrow_w) ])
       rq7_benches);
  header
    "RQ7: worst-case-width source vs hand-narrowed source (energy vs \
     narrow-source BASELINE)";
  row_header [ "base-wide"; "spec-wide"; "spec-narrow" ];
  List.iter
    (fun name ->
      let w = Registry.find name in
      match w.narrow_source with
      | None -> ()
      | Some narrow ->
          let narrow_w = { w with source = narrow } in
          let b_narrow =
            run_cached ~tag:"narrow" Driver.baseline_config narrow_w
          in
          let b_wide = baseline w in
          let s_wide = bitspec w in
          let s_narrow =
            run_cached ~tag:"narrow" Driver.bitspec_config narrow_w
          in
          Printf.printf "%-18s %12.3f %12.3f %12.3f\n%!" w.name
            (rel b_wide.Experiment.total_energy b_narrow.Experiment.total_energy)
            (rel s_wide.Experiment.total_energy b_narrow.Experiment.total_energy)
            (rel s_narrow.Experiment.total_energy
               b_narrow.Experiment.total_energy))
    rq7_benches

(* ---------------------------------------------------------------------- *)
(* Figure 17 (RQ8): composition with dynamic timing slack                   *)
(* ---------------------------------------------------------------------- *)

let fig17_row (w : Workload.t) =
  row ("fig17/" ^ w.name) (fun () ->
      let cb = Experiment.compile_workload Driver.baseline_config w in
      let rb =
        Driver.run_machine ~setup:(w.test.Workload.setup cb.Driver.ir) cb
          ~entry:w.entry ~args:w.test.Workload.args
      in
      let cs = Experiment.compile_workload Driver.bitspec_config w in
      let rs =
        Driver.run_machine ~setup:(w.test.Workload.setup cs.Driver.ir) cs
          ~entry:w.entry ~args:w.test.Workload.args
      in
      let dts est (r : Bs_sim.Machine.result) =
        Energy.total
          (fst (Dts.scale est r.Bs_sim.Machine.ctr (Energy.of_result r)))
      in
      let base_e = Energy.total (Energy.of_result rb) in
      let spec_e = Energy.total (Energy.of_result rs) in
      let dts_rel = dts Dts.Conservative rb /. base_e in
      let dts_spec_rel = dts Dts.Conservative rs /. base_e in
      let aware_rel = dts Dts.Width_aware rs /. base_e in
      Printf.sprintf "%-18s %12.3f %12.3f %12.3f %12.3f\n" w.name dts_rel
        dts_spec_rel
        (dts_rel *. (spec_e /. base_e))
        aware_rel)

let fig17 () =
  warm (List.map (fun w -> ig (fun () -> fig17_row w)) benches);
  header "Figure 17: DTS and DTS+BITSPEC energy (vs BASELINE)";
  row_header [ "DTS"; "DTS+BITSPEC"; "product"; "width-aware" ];
  List.iter (fun w -> Printf.printf "%s%!" (fig17_row w)) benches

(* ---------------------------------------------------------------------- *)
(* Figure 18 (RQ9): Thumb dynamic instructions                              *)
(* ---------------------------------------------------------------------- *)

let fig18 () =
  warm
    (List.concat_map
       (fun w ->
         [ ig (fun () -> baseline w);
           ig (fun () -> run_cached Driver.thumb_config w) ])
       benches);
  header "Figure 18: Thumb dynamic instructions relative to BASELINE";
  row_header [ "thumb/base" ];
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (w : Workload.t) ->
      let b = baseline w in
      let t = run_cached Driver.thumb_config w in
      let r = reli t.Experiment.instrs b.Experiment.instrs in
      sum := !sum +. r;
      incr n;
      Printf.printf "%-18s %12.3f\n%!" w.name r)
    benches;
  Printf.printf "%-18s %12.3f   (paper: 1.258 average)\n" "MEAN"
    (!sum /. float_of_int !n)

(* ---------------------------------------------------------------------- *)
(* Bechamel: host-side throughput of the toolchain                          *)
(* ---------------------------------------------------------------------- *)

let bechamel_section () =
  header "Bechamel: host-side throughput of the pipeline stages";
  let open Bechamel in
  let open Toolkit in
  let w = Registry.find "bitcount" in
  let c = Experiment.compile_workload Driver.bitspec_config w in
  (* the compile tests measure the compiler, so they bypass the compile
     cache and call the driver directly *)
  let compile_direct config () =
    ignore
      (Driver.compile ~config ~source:w.Workload.source
         ~setup:w.Workload.train.Workload.setup
         ~train:[ (w.Workload.entry, w.Workload.train.Workload.args) ] ())
  in
  let tests =
    Test.make_grouped ~name:"pipeline"
      [ Test.make ~name:"compile-baseline"
          (Staged.stage (compile_direct Driver.baseline_config));
        Test.make ~name:"compile-bitspec"
          (Staged.stage (compile_direct Driver.bitspec_config));
        Test.make ~name:"simulate-bitspec"
          (Staged.stage (fun () ->
               ignore
                 (Driver.run_machine
                    ~setup:(w.train.Workload.setup c.Driver.ir)
                    c ~entry:w.entry ~args:w.train.Workload.args)));
        Test.make ~name:"interpret-ir"
          (Staged.stage (fun () ->
               ignore
                 (Interp.run_fresh
                    ~setup:(w.train.Workload.setup c.Driver.ir)
                    c.Driver.ir ~entry:w.entry ~args:w.train.Workload.args)))
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          Printf.printf "%-28s %12.3f ms/run\n%!" name (est /. 1e6)
      | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
    results

(* ---------------------------------------------------------------------- *)
(* Intermittent power: re-execution energy vs outage rate                   *)
(* ---------------------------------------------------------------------- *)

let harvest_benches =
  List.filter
    (fun (w : Workload.t) ->
      List.mem w.name [ "CRC32"; "bitcount"; "stringsearch" ])
    benches

let harvest_means = [ 500; 2000; 8000; 32000 ]

let harvest_cell (w : Workload.t) mean =
  row (Printf.sprintf "harvest/%s/%d" w.name mean) (fun () ->
      let c =
        Campaign.run_power ~jobs:1 ~policy:(Bs_sim.Checkpoint.Interval 500)
          ~retries:8
          ~dist:(Bs_sim.Powertrace.Exponential (float_of_int mean))
          ~trials:25 ~seed:3L w
      in
      let n = float_of_int (List.length c.Campaign.p_trials) in
      let sum f = List.fold_left (fun a t -> a +. f t) 0.0 c.Campaign.p_trials in
      let restores = sum (fun t -> float_of_int t.Campaign.pt_restores) /. n in
      let ckpt_ovh =
        100.0 *. sum (fun t -> t.Campaign.pt_ckpt_energy) /. n
        /. c.Campaign.p_golden_energy
      in
      let reexec_ovh =
        100.0 *. sum (fun t -> t.Campaign.pt_reexec_energy) /. n
        /. c.Campaign.p_golden_energy
      in
      let ok =
        List.for_all
          (fun t ->
            match t.Campaign.pt_verdict with
            | Campaign.P_completed | Campaign.P_restored _ -> true
            | _ -> false)
          c.Campaign.p_trials
      in
      Printf.sprintf "%10.1f %9.1f%% %9.1f%% %10s" restores ckpt_ovh reexec_ovh
        (if ok then "all-correct" else "HAS-FAILURES"))

let harvest () =
  warm
    (List.concat_map
       (fun w ->
         List.map (fun m -> ig (fun () -> harvest_cell w m)) harvest_means)
       harvest_benches);
  header
    "Intermittent power: energy overhead vs outage rate (exp-distributed \
     outages, interval:500 checkpoints, 25 trials/cell, seed 3)";
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "-- %s (columns: restores/trial, checkpoint overhead, \
                     re-execution overhead, verdicts)\n"
        w.name;
      List.iter
        (fun mean ->
          Printf.printf "  exp:%-8d %s\n%!" mean (harvest_cell w mean))
        harvest_means)
    harvest_benches

(* ---------------------------------------------------------------------- *)
(* Bit-level vulnerability: predicted vs measured                           *)
(* ---------------------------------------------------------------------- *)

let vuln_cell (w : Workload.t) =
  row ("vuln/" ^ w.name) (fun () ->
      Campaign.validation_report
        (Campaign.validate ~jobs:1 ~trials:400 ~seed:11L w))

let vuln () =
  warm (List.map (fun w -> ig (fun () -> vuln_cell w)) harvest_benches);
  header
    "Bit-level vulnerability: predicted vs measured (400 register-flip \
     trials/workload, seed 11)";
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "-- %s\n%s%!" w.name (vuln_cell w))
    harvest_benches

(* ---------------------------------------------------------------------- *)

let sections =
  [ ("fig1", fig1); ("fig3", fig3); ("fig5", fig5); ("fig8", fig8);
    ("fig9", fig9); ("fig10", fig10); ("fig11", fig11); ("fig12", fig12);
    ("rq3", rq3); ("fig13", fig13); ("fig14", fig14); ("table2", table2);
    ("rq5", rq5); ("tune", tune);
    ("fig15", fig15); ("fig16", fig16); ("rq7", rq7); ("fig17", fig17);
    ("fig18", fig18); ("harvest", harvest); ("vuln", vuln);
    ("bechamel", bechamel_section) ]

(* Machine-readable run summary: per-section wall-clock and compile-cache
   deltas, the whole run's phase-time breakdown, and misspeculation
   attribution per workload. *)

let rate h m = if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

(* Misspeculation attribution: one BITSPEC machine run per workload,
   folded through the srcmap into per-source-site counts.  Compiles are
   served from the compile cache, so after fig8 (or any BITSPEC section)
   this costs one simulation per workload. *)
(* Served entirely from [Experiment.run_test]'s memo when the fig8
   section already ran: attribution reuses the very simulation the
   figures measured instead of repeating it.  [simulated_mips] stays
   meaningful either way — it derives from the wall time the counters
   themselves recorded during the (one) simulation. *)
let misspec_report () =
  List.map
    (fun (w : Workload.t) ->
      let c, r = Experiment.run_test Driver.bitspec_config w in
      (w.name, r.Bs_sim.Machine.ctr, Experiment.misspec_sites c r))
    benches

let top_n n l = List.filteri (fun i _ -> i < n) l

(* Host-side interpreter rate: every workload's test input through the
   IR interpreter (compiled engine — the default opts), reported as IR
   steps per host microsecond.  The interpreter-side analogue of the
   machine's [simulated_mips]; like it, excluded from any deterministic
   comparison.  Compiles are served from the compile cache (same keys
   as the sections), so this costs one interpreter run per workload. *)
let interp_mips () =
  let steps = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (w : Workload.t) ->
      let c = Experiment.compile_workload Driver.bitspec_config w in
      let r, mem =
        Interp.run_fresh
          ~setup:(w.test.Workload.setup c.Driver.ir)
          c.Driver.ir ~entry:w.entry ~args:w.test.Workload.args
      in
      Memimage.recycle mem;
      steps := !steps + r.Interp.steps)
    benches;
  let dt = Unix.gettimeofday () -. t0 in
  if dt <= 0.0 then 0.0 else float_of_int !steps /. dt /. 1e6

let write_bench_json ~total ~phases ~report ~imips timings =
  let hits, misses = Compile_cache.stats () in
  let totals = Bs_sim.Counters.create () in
  List.iter
    (fun (_, ctr, _) -> Bs_sim.Counters.add ~into:totals ctr)
    report;
  let sections_json =
    String.concat ",\n"
      (List.map
         (fun (name, seconds, h, m) ->
           Printf.sprintf
             "    { \"name\": %S, \"seconds\": %.3f, \"compile_cache\": { \
              \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f } }"
             name seconds h m (rate h m))
         timings)
  in
  let phases_json =
    String.concat ",\n"
      (List.map
         (fun (name, seconds, count) ->
           Printf.sprintf "    { \"name\": %S, \"seconds\": %.3f, \"count\": %d }"
             name seconds count)
         phases)
  in
  let sites_json =
    String.concat ",\n"
      (List.map
         (fun (wname, (ctr : Bs_sim.Counters.t), sites) ->
           Printf.sprintf
             "    { \"workload\": %S, \"misspecs\": %d, \"sites\": [%s] }"
             wname ctr.Bs_sim.Counters.misspecs
             (String.concat ", "
                (List.map
                   (fun ((fn, var, line), n) ->
                     Printf.sprintf
                       "{ \"fn\": %S, \"var\": %S, \"line\": %d, \"count\": %d }"
                       fn var line n)
                   (top_n 5 sites))))
         report)
  in
  let totals_json =
    String.concat ",\n"
      (List.map
         (fun (name, v) -> Printf.sprintf "    \"%s\": %d" name v)
         (Bs_sim.Counters.to_assoc totals))
  in
  let oc = open_out "BENCH_pr9.json" in
  Printf.fprintf oc
    "{\n\
    \  \"jobs\": %d,\n\
    \  \"total_seconds\": %.3f,\n\
    \  \"simulated_mips\": %.2f,\n\
    \  \"interp_mips\": %.2f,\n\
    \  \"compile_cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f },\n\
    \  \"sections\": [\n%s\n  ],\n\
    \  \"phases\": [\n%s\n  ],\n\
    \  \"misspec\": [\n%s\n  ],\n\
    \  \"counter_totals\": {\n%s\n  }\n\
     }\n"
    !jobs total
    (Bs_sim.Counters.simulated_mips totals)
    imips hits misses (rate hits misses)
    sections_json phases_json sites_json totals_json;
  close_out oc

let () =
  (* Throughput GC regime for the harness: a larger minor heap keeps
     short-lived simulator and interpreter values from being collected
     (and promoted) mid-run, and a higher space overhead trades major-GC
     frequency for memory we can afford in a batch process.  Affects
     wall-clock numbers only — results are GC-invariant. *)
  Gc.set
    { (Gc.get ()) with
      Gc.minor_heap_size = 8 * 1024 * 1024;
      Gc.space_overhead = 200 };
  (* peel -jN / --jobs N / --jobs=N off the section list *)
  let rec parse acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: n :: rest ->
        jobs := max 1 (int_of_string n);
        parse acc rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        jobs := max 1 (int_of_string (String.sub a 7 (String.length a - 7)));
        parse acc rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
        jobs := max 1 (int_of_string (String.sub a 2 (String.length a - 2)));
        parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | l -> l
  in
  (* record spans for the whole run; the JSON folds them into a
     phase-time breakdown *)
  Bs_obs.Trace.enable ();
  let t_start = Unix.gettimeofday () in
  let h_start, m_start = Compile_cache.stats () in
  let timings = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          let h0, m0 = Compile_cache.stats () in
          let t0 = Unix.gettimeofday () in
          f ();
          let h1, m1 = Compile_cache.stats () in
          timings :=
            (name, Unix.gettimeofday () -. t0, h1 - h0, m1 - m0) :: !timings
      | None ->
          Printf.eprintf "unknown section %s (available: %s)\n" name
            (String.concat " " (List.map fst sections)))
    requested;
  (* The report + interpreter-rate phase issues its own (cached)
     compiles after the timed sections.  Account it as a synthetic
     [warm] section so the per-section cache deltas sum exactly to the
     global counters — previously its hits were unattributed. *)
  let h0, m0 = Compile_cache.stats () in
  let t0 = Unix.gettimeofday () in
  let report = misspec_report () in
  let imips = interp_mips () in
  let h1, m1 = Compile_cache.stats () in
  timings :=
    ("warm", Unix.gettimeofday () -. t0, h1 - h0, m1 - m0) :: !timings;
  let total = Unix.gettimeofday () -. t_start in
  Bs_obs.Trace.disable ();
  (* Per-section deltas must account for every global hit and miss: any
     compile issued outside a timed section (or a future report phase
     issuing unattributed work) re-desyncs the JSON silently.  Fail
     loudly instead. *)
  let sec_h =
    List.fold_left (fun acc (_, _, h, _) -> acc + h) 0 !timings
  in
  let sec_m =
    List.fold_left (fun acc (_, _, _, m) -> acc + m) 0 !timings
  in
  let h_end, m_end = Compile_cache.stats () in
  if sec_h <> h_end - h_start || sec_m <> m_end - m_start then begin
    Printf.eprintf
      "bench: cache accounting drift: sections sum to %d hits / %d misses \
       but the global counters moved by %d / %d\n"
      sec_h sec_m (h_end - h_start) (m_end - m_start);
    exit 1
  end;
  write_bench_json ~total ~phases:(Bs_obs.Trace.phase_table ()) ~report ~imips
    (List.rev !timings)
